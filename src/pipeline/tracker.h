// GroupTracker: the sequenced merge stage's bookkeeping.
//
// One union-find over the open messages receives every merge edge the
// stages emit (temporal + rule edges from the shards, cross-router edges
// from the merge thread itself), so the final partition is bit-identical
// to the single-threaded digesters no matter how the per-router work was
// sharded.  The tracker also owns the streaming lifecycle: per-group
// first/last activity clocks, the periodic idle sweep that closes groups
// no further message could join, the max-age force close that bounds
// latency and memory for never-ending periodic trains, and arena
// compaction once closed messages dominate.
//
// Messages are addressed by their sequence number (raw index); an edge
// whose endpoint has already been emitted is skipped — the same "chain
// tail already closed" guard the seed StreamingDigester applied.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/union_find.h"
#include "core/digest.h"
#include "obs/metrics.h"
#include "pipeline/stages.h"

namespace sld::obs {
class Registry;
}  // namespace sld::obs

namespace sld::ckpt {
class Writer;
class Reader;
}  // namespace sld::ckpt

namespace sld::pipeline {

class GroupTracker {
 public:
  // An idle horizon that never closes a group before Flush (batch mode).
  static constexpr TimeMs kUnboundedMs = INT64_MAX / 4;

  // `kb_mutex`, when given, is reader-locked around event building: the
  // sharded pipeline's workers may grow the template set (catch-all
  // creation) concurrently with the merge thread reading it for labels.
  GroupTracker(const core::KnowledgeBase* kb, const core::LocationDict* dict,
               TimeMs idle_close_ms, TimeMs max_group_age_ms,
               std::shared_mutex* kb_mutex = nullptr);

  // Advances the stream clock; when a sweep is due, closes every group
  // that has been idle past the horizon (or alive past the max age) and
  // returns its events, ordered by start time.
  std::vector<core::DigestEvent> Observe(TimeMs now);

  // Admits a message to the arena (sequence numbers must be fresh and
  // increasing — the sequenced merge stage guarantees that).
  void Add(core::Augmented msg);

  // Applies merge edges; endpoints already emitted (or never seen) are
  // skipped and the edge is dropped.
  void ApplyEdges(const std::vector<MergeEdge>& edges);

  // True when both messages are open and currently in the same group.
  bool SameGroup(std::size_t seq_a, std::size_t seq_b);

  // Refreshes the activity clock of the group containing `seq`.
  void Touch(std::size_t seq, TimeMs t);

  // Records rules that fired (distinct count reported to the result).
  void NoteRules(const std::vector<std::uint64_t>& keys);

  // Closes every open group (end of stream); events ordered by start.
  std::vector<core::DigestEvent> Flush();

  // Registers tracker metrics (tracker_* series) with `reg`: open-group /
  // open-message gauges and per-reason close counters (idle sweep,
  // max-age force close, end-of-stream flush).  `reg` must outlive the
  // tracker; call before the first message.
  void BindMetrics(obs::Registry* reg);

  // Checkpointing (DESIGN.md §14): compacts the arena (observably
  // transparent — it already runs at arbitrary times), then serializes
  // the open messages, union-find forest, group metadata, fired-rule
  // set, processed count, and stream clock.  LoadState expects a fresh
  // tracker constructed with the same kb/dict/horizons.
  void SaveState(ckpt::Writer* w);
  bool LoadState(ckpt::Reader* r);

  std::size_t open_group_count() const noexcept { return groups_.size(); }
  std::size_t open_message_count() const noexcept { return open_messages_; }
  std::size_t processed_count() const noexcept { return processed_; }
  std::size_t active_rule_count() const noexcept {
    return active_rules_.size();
  }

 private:
  struct GroupMeta {
    TimeMs first_time = 0;
    TimeMs last_time = 0;
  };

  void MergeSlots(std::size_t a, std::size_t b);
  std::vector<core::DigestEvent> CloseIdle(TimeMs now, bool flushing);
  void SyncGauges() noexcept;
  core::DigestEvent BuildLocked(
      const std::vector<const core::Augmented*>& members) const;
  void CompactArena();

  const core::KnowledgeBase* kb_;
  const core::LocationDict* dict_;
  TimeMs idle_close_ms_;
  TimeMs max_group_age_ms_;
  std::shared_mutex* kb_mutex_;

  // Arena of messages still belonging to open groups (plus closed ones
  // awaiting compaction); union-find indexes into it.
  std::vector<core::Augmented> arena_;
  std::vector<bool> closed_;
  UnionFind uf_{0};
  // sequence number -> arena slot, for OPEN messages only.
  std::unordered_map<std::size_t, std::size_t> slot_;
  // union-find root -> group bookkeeping (kept in sync across unions).
  std::unordered_map<std::size_t, GroupMeta> groups_;
  std::unordered_set<std::uint64_t> active_rules_;
  std::size_t open_messages_ = 0;
  std::size_t processed_ = 0;
  TimeMs clock_ = INT64_MIN;

  // Metric cells (null until BindMetrics).
  struct Cells {
    obs::Gauge* open_groups = nullptr;
    obs::Gauge* open_messages = nullptr;
    obs::Counter* closed_idle = nullptr;
    obs::Counter* closed_max_age = nullptr;
    obs::Counter* closed_flush = nullptr;
    obs::Histogram* event_messages = nullptr;  // group size at close
  } cells_;
};

}  // namespace sld::pipeline
