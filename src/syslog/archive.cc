#include "syslog/archive.h"

#include <fstream>
#include <istream>
#include <ostream>

namespace sld::syslog {

void WriteArchive(std::ostream& out,
                  std::span<const SyslogRecord> records) {
  // One reused line buffer, flushed to the stream in large writes — the
  // old per-record `out << FormatRecord(rec)` paid a string allocation
  // and an operator<< round trip for every ~70-byte line.
  static constexpr std::size_t kFlushBytes = 1u << 18;
  std::string buffer;
  buffer.reserve(kFlushBytes + 512);
  for (const SyslogRecord& rec : records) {
    AppendRecord(rec, buffer);
    buffer += '\n';
    if (buffer.size() >= kFlushBytes) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
}

bool WriteArchiveFile(const std::string& path,
                      std::span<const SyslogRecord> records) {
  std::ofstream out(path);
  if (!out) return false;
  WriteArchive(out, records);
  out.flush();
  return static_cast<bool>(out);
}

std::vector<SyslogRecord> ReadArchive(std::istream& in,
                                      std::size_t* malformed) {
  std::vector<SyslogRecord> records;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (auto rec = ParseRecordLine(line)) {
      records.push_back(std::move(*rec));
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return records;
}

std::vector<SyslogRecord> ReadArchiveFile(const std::string& path,
                                          std::size_t* malformed,
                                          bool* ok) {
  std::ifstream in(path);
  if (!in) {
    if (ok != nullptr) *ok = false;
    if (malformed != nullptr) *malformed = 0;
    return {};
  }
  if (ok != nullptr) *ok = true;
  return ReadArchive(in, malformed);
}

}  // namespace sld::syslog
