#include "syslog/record.h"

#include <array>

#include "common/strings.h"

namespace sld::syslog {

std::string FormatRecord(const SyslogRecord& rec) {
  std::string out = FormatTimestamp(rec.time);
  out += ' ';
  out += rec.router;
  out += ' ';
  out += rec.code;
  out += ' ';
  out += rec.detail;
  return out;
}

std::optional<SyslogRecord> ParseRecordLine(std::string_view line) {
  line = Trim(line);
  // Timestamp occupies the first 19 characters ("YYYY-MM-DD HH:MM:SS").
  if (line.size() < 21) return std::nullopt;
  const auto time = ParseTimestamp(line.substr(0, 19));
  if (!time) return std::nullopt;
  std::string_view rest = Trim(line.substr(19));
  const std::size_t router_end = rest.find(' ');
  if (router_end == std::string_view::npos) return std::nullopt;
  SyslogRecord rec;
  rec.time = *time;
  rec.router = std::string(rest.substr(0, router_end));
  rest = Trim(rest.substr(router_end));
  const std::size_t code_end = rest.find(' ');
  if (code_end == std::string_view::npos) {
    rec.code = std::string(rest);
  } else {
    rec.code = std::string(rest.substr(0, code_end));
    rec.detail = std::string(Trim(rest.substr(code_end)));
  }
  if (rec.code.empty()) return std::nullopt;
  return rec;
}

int VendorSeverity(std::string_view code) noexcept {
  const std::size_t first = code.find('-');
  if (first == std::string_view::npos) return 6;
  const std::size_t second = code.find('-', first + 1);
  const std::string_view middle =
      second == std::string_view::npos
          ? code.substr(first + 1)
          : code.substr(first + 1, second - first - 1);
  if (middle.size() == 1 && middle[0] >= '0' && middle[0] <= '7') {
    return middle[0] - '0';
  }
  struct NamedSeverity {
    std::string_view name;
    int level;
  };
  static constexpr std::array<NamedSeverity, 6> kNames = {{
      {"EMERGENCY", 0},
      {"CRITICAL", 2},
      {"MAJOR", 3},
      {"MINOR", 4},
      {"WARNING", 4},
      {"INFO", 6},
  }};
  for (const NamedSeverity& n : kNames) {
    if (middle == n.name) return n.level;
  }
  return 6;
}

std::string_view CodeFacility(std::string_view code) noexcept {
  const std::size_t dash = code.find('-');
  return dash == std::string_view::npos ? code : code.substr(0, dash);
}

}  // namespace sld::syslog
