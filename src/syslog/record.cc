#include "syslog/record.h"

#include <array>

#include "common/simd.h"
#include "common/strings.h"

namespace sld::syslog {

void AppendRecord(const SyslogRecord& rec, std::string& out) {
  const CivilTime ct = ToCivil(rec.time);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  out += ts;
  out += ' ';
  out += rec.router;
  out += ' ';
  out += rec.code;
  out += ' ';
  out += rec.detail;
}

std::string FormatRecord(const SyslogRecord& rec) {
  std::string out;
  AppendRecord(rec, out);
  return out;
}

bool ParseRecordInto(std::string_view line, SyslogRecord& rec,
                     TimestampMemo* memo) {
  line = Trim(line);
  // Timestamp occupies the first 19 characters ("YYYY-MM-DD HH:MM:SS").
  if (line.size() < 21) return false;
  const std::string_view ts = line.substr(0, 19);
  const std::optional<TimeMs> time =
      memo != nullptr ? ParseTimestampFast(ts, *memo) : ParseTimestamp(ts);
  if (!time) return false;
  // `line` is right-trimmed already, so each later field only needs its
  // leading whitespace skipped — and the tail can never be all spaces,
  // which is why the code-emptiness check below still suffices.
  std::string_view rest = TrimLeft(line.substr(19));
  const std::size_t router_end = simd::FindByteFrom(rest, 0, ' ');
  if (router_end == rest.size()) return false;
  rec.time = *time;
  rec.router.assign(rest.data(), router_end);
  rest = TrimLeft(rest.substr(router_end));
  const std::size_t code_end = simd::FindByteFrom(rest, 0, ' ');
  if (code_end == rest.size()) {
    rec.code.assign(rest.data(), rest.size());
    rec.detail.clear();
  } else {
    rec.code.assign(rest.data(), code_end);
    const std::string_view detail = TrimLeft(rest.substr(code_end));
    rec.detail.assign(detail.data(), detail.size());
  }
  return !rec.code.empty();
}

std::optional<SyslogRecord> ParseRecordLine(std::string_view line) {
  SyslogRecord rec;
  if (!ParseRecordInto(line, rec)) return std::nullopt;
  return rec;
}

int VendorSeverity(std::string_view code) noexcept {
  const std::size_t first = code.find('-');
  if (first == std::string_view::npos) return 6;
  const std::size_t second = code.find('-', first + 1);
  const std::string_view middle =
      second == std::string_view::npos
          ? code.substr(first + 1)
          : code.substr(first + 1, second - first - 1);
  if (middle.size() == 1 && middle[0] >= '0' && middle[0] <= '7') {
    return middle[0] - '0';
  }
  struct NamedSeverity {
    std::string_view name;
    int level;
  };
  static constexpr std::array<NamedSeverity, 6> kNames = {{
      {"EMERGENCY", 0},
      {"CRITICAL", 2},
      {"MAJOR", 3},
      {"MINOR", 4},
      {"WARNING", 4},
      {"INFO", 6},
  }};
  for (const NamedSeverity& n : kNames) {
    if (middle == n.name) return n.level;
  }
  return 6;
}

std::string_view CodeFacility(std::string_view code) noexcept {
  const std::size_t dash = code.find('-');
  return dash == std::string_view::npos ? code : code.substr(0, dash);
}

}  // namespace sld::syslog
