// The canonical in-memory syslog record and its textual form.
//
// A router syslog message has only minimal structure (§2 of the paper):
//   (1) timestamp, (2) originating router, (3) message type / error code,
//   (4) free-form detail text.
// Everything downstream (template learning, grouping, presentation) works
// on this four-field record.  The canonical line rendering is
//   "YYYY-MM-DD HH:MM:SS <router> <error-code> <detail...>"
// matching the layout of Table 1 in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/time.h"

namespace sld::syslog {

struct SyslogRecord {
  TimeMs time = 0;
  std::string router;
  std::string code;    // e.g. "LINK-3-UPDOWN" or "SNMP-WARNING-linkDown"
  std::string detail;  // free-form text

  friend bool operator==(const SyslogRecord&, const SyslogRecord&) = default;
};

// Renders the canonical single-line form.
std::string FormatRecord(const SyslogRecord& rec);

// Appends the canonical single-line form to `out` (no trailing newline).
// Same rendering as FormatRecord without the per-record temporary —
// WriteArchive reuses one buffer across millions of records.
void AppendRecord(const SyslogRecord& rec, std::string& out);

// Parses the canonical single-line form; nullopt on malformed input.
std::optional<SyslogRecord> ParseRecordLine(std::string_view line);

// Span fast path behind ParseRecordLine: parses `line` directly into
// `rec` (reusing its field capacity; no intermediate copies) and returns
// false on malformed input, leaving `rec` unspecified.  When `memo` is
// non-null the timestamp's calendar date is memoized across calls via
// ParseTimestampFast.  Accepts exactly the lines ParseRecordLine accepts
// and produces the same record for each.
bool ParseRecordInto(std::string_view line, SyslogRecord& rec,
                     TimestampMemo* memo = nullptr);

// Vendor-assigned severity extracted from the error code.
// V1 codes carry a digit between dashes ("LINK-3-UPDOWN" -> 3); V2 codes
// carry a severity word ("SNMP-WARNING-linkDown" -> 4).  Returns 6
// (informational) when no severity can be recognized.  Note the paper's
// §2 caveat: this value must NOT be used for event ranking — we expose it
// only so tests can demonstrate that ranking by it would be wrong.
int VendorSeverity(std::string_view code) noexcept;

// The facility/subsystem prefix of an error code ("LINK-3-UPDOWN" ->
// "LINK"; "SNMP-WARNING-linkDown" -> "SNMP").
std::string_view CodeFacility(std::string_view code) noexcept;

}  // namespace sld::syslog
