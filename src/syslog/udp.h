// UDP transport for syslog datagrams (the syslog protocol's classic
// carrier): a move-only RAII sender/receiver pair over IPv4.
//
// In deployment, routers fire RFC 3164 datagrams at the collector's UDP
// port; the receiver hands each datagram to a Collector, which decodes,
// reorders, and feeds the digest pipeline.  These wrappers are
// deliberately minimal — blocking receive with a timeout, no threads —
// so callers own their event loop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sld::syslog {

// Owns a connected UDP socket for sending datagrams.
class UdpSender {
 public:
  // `host` is an IPv4 dotted quad ("127.0.0.1").  Returns nullopt when
  // the socket cannot be created or the address is invalid.
  static std::optional<UdpSender> Open(std::string_view host,
                                       std::uint16_t port);

  UdpSender(UdpSender&& other) noexcept;
  UdpSender& operator=(UdpSender&& other) noexcept;
  UdpSender(const UdpSender&) = delete;
  UdpSender& operator=(const UdpSender&) = delete;
  ~UdpSender();

  // Sends one datagram; false on send failure.
  bool Send(std::string_view datagram);

  std::size_t sent_count() const noexcept { return sent_; }

 private:
  explicit UdpSender(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::size_t sent_ = 0;
};

// Owns a bound UDP socket for receiving datagrams.
class UdpReceiver {
 public:
  // Binds 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  static std::optional<UdpReceiver> Bind(std::uint16_t port);

  UdpReceiver(UdpReceiver&& other) noexcept;
  UdpReceiver& operator=(UdpReceiver&& other) noexcept;
  UdpReceiver(const UdpReceiver&) = delete;
  UdpReceiver& operator=(const UdpReceiver&) = delete;
  ~UdpReceiver();

  std::uint16_t port() const noexcept { return port_; }

  // The underlying socket, for callers multiplexing several receivers
  // through one poll() loop (the engine host's UDP front); -1 when
  // moved-from.
  int fd() const noexcept { return fd_; }

  // Waits up to `timeout_ms` for one datagram; nullopt on timeout or
  // error.  Datagrams longer than 64 KiB are truncated (UDP limit).
  // `timeout_ms` 0 polls: an already-queued datagram is returned
  // immediately, an empty socket is a nullopt.
  std::optional<std::string> Receive(int timeout_ms);

  std::size_t received_count() const noexcept { return received_; }

 private:
  UdpReceiver(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::size_t received_ = 0;
};

}  // namespace sld::syslog
