// UDP transport for syslog datagrams (the syslog protocol's classic
// carrier): a move-only RAII sender/receiver pair over IPv4.
//
// In deployment, routers fire RFC 3164 datagrams at the collector's UDP
// port; the receiver hands each datagram to a Collector, which decodes,
// reorders, and feeds the digest pipeline.  These wrappers are
// deliberately minimal — blocking receive with a timeout, no threads —
// so callers own their event loop.  The batched wire front
// (src/wirefront/) builds its listener sockets on UdpReceiver::Bind and
// drains them with recvmmsg/io_uring instead of Receive().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sld::syslog {

// Owns a connected UDP socket for sending datagrams.
class UdpSender {
 public:
  // `host` is an IPv4 dotted quad ("127.0.0.1").  Returns nullopt when
  // the socket cannot be created or the address is invalid.
  static std::optional<UdpSender> Open(std::string_view host,
                                      std::uint16_t port);

  UdpSender(UdpSender&& other) noexcept;
  UdpSender& operator=(UdpSender&& other) noexcept;
  UdpSender(const UdpSender&) = delete;
  UdpSender& operator=(const UdpSender&) = delete;
  ~UdpSender();

  // Sends one datagram; false on send failure.
  bool Send(std::string_view datagram);

  std::size_t sent_count() const noexcept { return sent_; }

 private:
  explicit UdpSender(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::size_t sent_ = 0;
};

// Owns a bound UDP socket for receiving datagrams.
class UdpReceiver {
 public:
  struct BindOptions {
    // Requested kernel receive buffer.  The kernel clamps (and usually
    // doubles) the request; rcvbuf_bytes() reports what it actually
    // granted, so an under-provisioned net.core.rmem_max is visible
    // instead of silently dropping bursts.
    int rcvbuf_bytes = 4 * 1024 * 1024;
    // SO_REUSEPORT: several sockets may bind the same port and the
    // kernel hashes datagrams across them by flow (the wire front's
    // --listeners fan-out).  Every socket sharing the port must set it.
    bool reuse_port = false;
    // SO_RXQ_OVFL: attach the kernel's cumulative receive-queue drop
    // counter to each datagram as ancillary data, so overflow loss is
    // accounted instead of invisible.
    bool track_overflow = false;
  };

  // Binds 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  static std::optional<UdpReceiver> Bind(std::uint16_t port,
                                         const BindOptions& options);
  static std::optional<UdpReceiver> Bind(std::uint16_t port) {
    return Bind(port, BindOptions{});
  }

  UdpReceiver(UdpReceiver&& other) noexcept;
  UdpReceiver& operator=(UdpReceiver&& other) noexcept;
  UdpReceiver(const UdpReceiver&) = delete;
  UdpReceiver& operator=(const UdpReceiver&) = delete;
  ~UdpReceiver();

  std::uint16_t port() const noexcept { return port_; }

  // The underlying socket, for callers multiplexing several receivers
  // through one poll()/recvmmsg/io_uring loop (the wire front); -1 when
  // moved-from.
  int fd() const noexcept { return fd_; }

  // The receive buffer the kernel actually granted (getsockopt readback
  // after Bind applied BindOptions::rcvbuf_bytes); 0 when unknown.
  int rcvbuf_bytes() const noexcept { return rcvbuf_bytes_; }

  // Waits up to `timeout_ms` for one datagram and APPENDS it to
  // `*reuse`; returns false on timeout or error (leaving `*reuse`
  // untouched).  Callers that want only the new datagram clear the
  // buffer first; reusing one buffer across calls keeps the steady
  // state allocation-free once its capacity has grown.  Datagrams
  // longer than 64 KiB are truncated (UDP limit).  `timeout_ms` 0
  // polls: an already-queued datagram is appended immediately, an
  // empty socket returns false.
  bool Receive(std::string* reuse, int timeout_ms);

  std::size_t received_count() const noexcept { return received_; }

 private:
  UdpReceiver(int fd, std::uint16_t port, int rcvbuf)
      : fd_(fd), port_(port), rcvbuf_bytes_(rcvbuf) {}
  int fd_ = -1;
  std::uint16_t port_ = 0;
  int rcvbuf_bytes_ = 0;
  std::size_t received_ = 0;
};

}  // namespace sld::syslog
