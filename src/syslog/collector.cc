#include "syslog/collector.h"

#include <functional>

namespace sld::syslog {

std::size_t Collector::HashRecord(const SyslogRecord& rec) noexcept {
  std::size_t h = std::hash<TimeMs>{}(rec.time);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::string>{}(rec.router));
  mix(std::hash<std::string>{}(rec.code));
  mix(std::hash<std::string>{}(rec.detail));
  return h;
}

bool Collector::IngestDatagram(std::string_view datagram) {
  auto rec = DecodeRfc3164(datagram, year_);
  if (!rec) {
    ++malformed_;
    return false;
  }
  return IngestRecord(std::move(*rec));
}

bool Collector::IngestRecord(SyslogRecord rec) {
  if (rec.time <= released_through_ && released_through_ != INT64_MIN) {
    ++late_;
    return false;
  }
  if (suppress_duplicates_) {
    const std::size_t hash = HashRecord(rec);
    if (buffered_hashes_.count(hash) != 0) {
      // Hash hit: confirm with an equality scan over same-time entries
      // before dropping (hash collisions must not lose records).
      const auto [begin, end] = buffer_.equal_range(rec.time);
      for (auto it = begin; it != end; ++it) {
        if (it->second == rec) {
          ++duplicates_;
          return false;
        }
      }
    }
    buffered_hashes_.insert(hash);
  }
  if (rec.time > watermark_) watermark_ = rec.time;
  buffer_.emplace(rec.time, std::move(rec));
  ++accepted_;
  return true;
}

std::vector<SyslogRecord> Collector::Drain() {
  std::vector<SyslogRecord> out;
  if (watermark_ == INT64_MIN) return out;
  const TimeMs release_up_to = watermark_ - hold_ms_;
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first <= release_up_to) {
    released_through_ = it->first;
    if (suppress_duplicates_) {
      const auto hash_it = buffered_hashes_.find(HashRecord(it->second));
      if (hash_it != buffered_hashes_.end()) {
        buffered_hashes_.erase(hash_it);
      }
    }
    out.push_back(std::move(it->second));
    it = buffer_.erase(it);
  }
  return out;
}

std::vector<SyslogRecord> Collector::Flush() {
  std::vector<SyslogRecord> out;
  for (auto& [time, rec] : buffer_) {
    released_through_ = time;
    out.push_back(std::move(rec));
  }
  buffer_.clear();
  buffered_hashes_.clear();
  return out;
}

}  // namespace sld::syslog
