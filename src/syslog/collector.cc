#include "syslog/collector.h"

#include <functional>

#include "ckpt/codec.h"
#include "obs/registry.h"

namespace sld::syslog {

std::size_t Collector::HashRecord(const SyslogRecord& rec) noexcept {
  std::size_t h = std::hash<TimeMs>{}(rec.time);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::string>{}(rec.router));
  mix(std::hash<std::string>{}(rec.code));
  mix(std::hash<std::string>{}(rec.detail));
  return h;
}

void Collector::BindMetrics(obs::Registry* reg) {
  cells_.accepted = reg->AddCounter(
      "collector_accepted_total",
      "records admitted to the reorder buffer");
  cells_.released = reg->AddCounter(
      "collector_released_total",
      "records released downstream in timestamp order");
  cells_.late = reg->AddCounter(
      "collector_late_total",
      "records dropped: strictly older than the released watermark");
  cells_.malformed = reg->AddCounter(
      "collector_malformed_total", "datagrams that failed RFC 3164 decode");
  cells_.duplicates = reg->AddCounter(
      "collector_duplicate_total",
      "records suppressed as duplicates of a buffered record");
  cells_.buffered = reg->AddGauge(
      "collector_reorder_buffer_depth", "records held awaiting release");
  cells_.release_lag_ms = reg->AddGauge(
      "collector_release_lag_ms",
      "stream-clock gap between newest seen and newest released timestamp");
  // Mirror anything counted before binding.
  cells_.accepted->Inc(accepted_);
  cells_.released->Inc(released_);
  cells_.late->Inc(late_);
  cells_.malformed->Inc(malformed_);
  cells_.duplicates->Inc(duplicates_);
  SyncGauges();
}

void Collector::SyncGauges() noexcept {
  if (cells_.buffered == nullptr) return;
  cells_.buffered->Set(static_cast<std::int64_t>(buffer_.size()));
  const TimeMs lag =
      (watermark_ == INT64_MIN || released_through_ == INT64_MIN)
          ? 0
          : watermark_ - released_through_;
  cells_.release_lag_ms->Set(lag);
}

bool Collector::IngestDatagram(std::string_view datagram,
                               TimeMs* accepted_time) {
  auto rec = DecodeRfc3164(datagram, year_);
  if (!rec) {
    ++malformed_;
    if (cells_.malformed != nullptr) cells_.malformed->Inc();
    return false;
  }
  return IngestRecord(std::move(*rec), accepted_time);
}

bool Collector::IngestRecord(SyslogRecord rec, TimeMs* accepted_time) {
  // Strictly older than the released watermark: ordering can no longer be
  // preserved.  A tie (rec.time == released_through_) is NOT late — ties
  // release in arrival order, so accepting it keeps the output sorted and
  // avoids losing same-second records that arrive just after a drain.
  if (rec.time < released_through_) {
    ++late_;
    if (cells_.late != nullptr) cells_.late->Inc();
    return false;
  }
  if (suppress_duplicates_) {
    const std::size_t hash = Hash(rec);
    // A tie with the release boundary that is byte-equal to a record
    // already released at that second is a duplicate datagram whose
    // twin straddled a drain — not a fresh same-second record.
    if (rec.time == released_through_ && boundary_hashes_.count(hash) != 0) {
      for (const SyslogRecord& released : boundary_records_) {
        if (released == rec) {
          ++duplicates_;
          if (cells_.duplicates != nullptr) cells_.duplicates->Inc();
          return false;
        }
      }
    }
    if (buffered_hashes_.count(hash) != 0) {
      // Hash hit: confirm with an equality scan over same-time entries
      // before dropping (hash collisions must not lose records).
      const auto [begin, end] = buffer_.equal_range(rec.time);
      for (auto it = begin; it != end; ++it) {
        if (it->second == rec) {
          ++duplicates_;
          if (cells_.duplicates != nullptr) cells_.duplicates->Inc();
          return false;
        }
      }
    }
    buffered_hashes_.insert(hash);
  }
  if (rec.time > watermark_) watermark_ = rec.time;
  if (accepted_time != nullptr) *accepted_time = rec.time;
  buffer_.emplace(rec.time, std::move(rec));
  ++accepted_;
  if (cells_.accepted != nullptr) cells_.accepted->Inc();
  SyncGauges();
  return true;
}

std::vector<SyslogRecord> Collector::Drain() {
  std::vector<SyslogRecord> out;
  if (watermark_ == INT64_MIN) return out;
  const TimeMs release_up_to = watermark_ - hold_ms_;
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first <= release_up_to) {
    if (suppress_duplicates_ && it->first != released_through_) {
      // The boundary advanced: older released seconds can no longer tie
      // with an arrival, so their window entries are dead weight.
      boundary_records_.clear();
      boundary_hashes_.clear();
    }
    released_through_ = it->first;
    if (suppress_duplicates_) {
      const std::size_t hash = Hash(it->second);
      const auto hash_it = buffered_hashes_.find(hash);
      if (hash_it != buffered_hashes_.end()) {
        buffered_hashes_.erase(hash_it);
      }
      boundary_hashes_.insert(hash);
      boundary_records_.push_back(it->second);
    }
    out.push_back(std::move(it->second));
    it = buffer_.erase(it);
  }
  released_ += out.size();
  if (cells_.released != nullptr) cells_.released->Inc(out.size());
  SyncGauges();
  return out;
}

std::vector<SyslogRecord> Collector::Flush() {
  std::vector<SyslogRecord> out;
  out.reserve(buffer_.size());
  for (auto& [time, rec] : buffer_) out.push_back(std::move(rec));
  buffer_.clear();
  buffered_hashes_.clear();
  boundary_records_.clear();
  boundary_hashes_.clear();
  released_ += out.size();
  if (cells_.released != nullptr) cells_.released->Inc(out.size());
  // End of epoch: reset the clocks so a reused collector does not reject
  // the next epoch's records against this epoch's watermark.
  watermark_ = INT64_MIN;
  released_through_ = INT64_MIN;
  SyncGauges();
  return out;
}

namespace {

void SaveRecord(const SyslogRecord& rec, ckpt::Writer* w) {
  w->I64(rec.time);
  w->Str(rec.router);
  w->Str(rec.code);
  w->Str(rec.detail);
}

SyslogRecord LoadRecord(ckpt::Reader* r) {
  SyslogRecord rec;
  rec.time = r->I64();
  rec.router = r->Str();
  rec.code = r->Str();
  rec.detail = r->Str();
  return rec;
}

// Minimum encoded size of a record: time (8) + three length prefixes.
constexpr std::size_t kMinRecordBytes = 8 + 3 * 8;

}  // namespace

void Collector::SaveState(ckpt::Writer* w) const {
  w->I64(watermark_);
  w->I64(released_through_);
  // The multimap iterates in release order, and equal keys preserve
  // insertion (= arrival) order, so a restore rebuilds the identical
  // release sequence.
  w->U64(buffer_.size());
  for (const auto& [time, rec] : buffer_) SaveRecord(rec, w);
  w->U64(boundary_records_.size());
  for (const SyslogRecord& rec : boundary_records_) SaveRecord(rec, w);
  w->U64(malformed_);
  w->U64(late_);
  w->U64(accepted_);
  w->U64(duplicates_);
  w->U64(released_);
}

bool Collector::LoadState(ckpt::Reader* r) {
  watermark_ = r->I64();
  released_through_ = r->I64();
  buffer_.clear();
  buffered_hashes_.clear();
  boundary_records_.clear();
  boundary_hashes_.clear();
  const std::uint64_t buffered = r->Count(kMinRecordBytes);
  for (std::uint64_t i = 0; i < buffered && r->ok(); ++i) {
    SyslogRecord rec = LoadRecord(r);
    if (suppress_duplicates_) buffered_hashes_.insert(Hash(rec));
    buffer_.emplace(rec.time, std::move(rec));
  }
  const std::uint64_t boundary = r->Count(kMinRecordBytes);
  for (std::uint64_t i = 0; i < boundary && r->ok(); ++i) {
    SyslogRecord rec = LoadRecord(r);
    boundary_hashes_.insert(Hash(rec));
    boundary_records_.push_back(std::move(rec));
  }
  const std::size_t malformed = r->U64();
  const std::size_t late = r->U64();
  const std::size_t accepted = r->U64();
  const std::size_t duplicates = r->U64();
  const std::size_t released = r->U64();
  if (!r->ok()) return false;
  // Mirror the restored totals into any bound cells (the cells were
  // zero: LoadState expects a fresh collector).
  if (cells_.accepted != nullptr) {
    cells_.malformed->Inc(malformed - malformed_);
    cells_.late->Inc(late - late_);
    cells_.accepted->Inc(accepted - accepted_);
    cells_.duplicates->Inc(duplicates - duplicates_);
    cells_.released->Inc(released - released_);
  }
  malformed_ = malformed;
  late_ = late;
  accepted_ = accepted;
  duplicates_ = duplicates;
  released_ = released;
  SyncGauges();
  return true;
}

}  // namespace sld::syslog
