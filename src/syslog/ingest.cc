#include "syslog/ingest.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/registry.h"

namespace sld::syslog {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// A read-only mapping of a whole file.  When mmap cannot serve (not a
// regular file, exotic filesystem), `fallback` holds the bytes instead.
class FileBytes {
 public:
  FileBytes() = default;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;
  ~FileBytes() {
    if (mapped_ != nullptr) ::munmap(mapped_, mapped_size_);
  }

  bool Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        if (st.st_size == 0) {
          ::close(fd);
          data_ = std::string_view();
          return true;
        }
        void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
        if (p != MAP_FAILED) {
          ::close(fd);
          mapped_ = p;
          mapped_size_ = static_cast<std::size_t>(st.st_size);
          ::madvise(mapped_, mapped_size_, MADV_SEQUENTIAL);
          data_ = std::string_view(static_cast<const char*>(mapped_),
                                   mapped_size_);
          return true;
        }
      }
      ::close(fd);
    }
    // Fallback: plain buffered read (also the path for whatever open()
    // variant the mmap attempt rejected but ifstream can still serve).
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    fallback_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    data_ = fallback_;
    return true;
  }

  std::string_view data() const { return data_; }

 private:
  void* mapped_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::string fallback_;
  std::string_view data_;
};

// Block boundaries: multiples of `block_bytes` snapped forward past the
// next '\n'.  A deliberate function of (data, block_bytes) alone so the
// same file splits identically at every thread count.
std::vector<std::pair<std::size_t, std::size_t>> SplitBlocks(
    std::string_view data, std::size_t block_bytes) {
  if (block_bytes == 0) block_bytes = 4u << 20;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  blocks.reserve(data.size() / block_bytes + 1);
  std::size_t begin = 0;
  while (begin < data.size()) {
    std::size_t end = begin + block_bytes;
    if (end >= data.size()) {
      end = data.size();
    } else {
      const std::size_t nl = simd::FindNewlineFrom(data, end);
      end = nl < data.size() ? nl + 1 : data.size();
    }
    blocks.emplace_back(begin, end);
    begin = end;
  }
  return blocks;
}

// Parses one block (which starts at a line start and ends after a
// newline or at EOF).  Line semantics replicate serial ReadArchive
// exactly: the raw line (newline excluded, '\r' kept) is skipped when
// empty or '#'-led, otherwise parsed and counted malformed on failure.
void ParseBlock(std::string_view block, std::vector<SyslogRecord>& out,
                std::size_t& malformed, TimestampMemo& memo) {
  // Typical archive lines run ~70-100 bytes, so size/64 over-reserves
  // slightly and the common case never reallocates.
  out.reserve(block.size() / 64 + 1);
  std::size_t pos = 0;
  while (pos < block.size()) {
    const std::size_t end = simd::FindNewlineFrom(block, pos);
    const std::string_view line = block.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line.front() == '#') continue;
    SyslogRecord rec;
    if (ParseRecordInto(line, rec, &memo)) {
      out.push_back(std::move(rec));
    } else {
      ++malformed;
    }
  }
}

void PublishMetrics(obs::Registry* reg, const IngestStats& stats) {
  if (reg == nullptr) return;
  reg->AddCounter("ingest_bytes_total", "Archive bytes ingested")
      ->Inc(stats.bytes);
  reg->AddCounter("ingest_records_total", "Archive records parsed")
      ->Inc(stats.records);
  reg->AddCounter("ingest_malformed_total",
                  "Malformed archive lines skipped")
      ->Inc(stats.malformed);
  reg->AddCounter("ingest_blocks_total", "Archive blocks parsed")
      ->Inc(stats.blocks);
  reg->AddGauge("ingest_threads", "Parse workers of the last ingest")
      ->Set(stats.threads);
  const auto phase_us = [&](const char* phase, double seconds) {
    reg->AddCounter("ingest_phase_duration_us",
                    "Ingest wall clock by phase", {{"phase", phase}})
        ->Inc(static_cast<std::uint64_t>(seconds * 1e6));
  };
  phase_us("read", stats.read_s);
  phase_us("parse", stats.parse_s);
  phase_us("assemble", stats.assemble_s);
}

}  // namespace

std::vector<SyslogRecord> ParseArchive(std::string_view data,
                                       const IngestOptions& options,
                                       IngestStats* stats) {
  IngestStats local;
  local.bytes = data.size();

  const auto parse_start = std::chrono::steady_clock::now();
  const auto blocks = SplitBlocks(data, options.block_bytes);
  local.blocks = blocks.size();

  ThreadPool pool(options.threads);
  local.threads = static_cast<int>(pool.thread_count());
  std::vector<std::vector<SyslogRecord>> parsed(blocks.size());
  std::vector<std::size_t> bad(blocks.size(), 0);
  std::vector<TimestampMemo> memos(pool.thread_count());
  pool.ParallelFor(
      blocks.size(),
      [&](std::size_t i, std::size_t worker) {
        ParseBlock(data.substr(blocks[i].first,
                               blocks[i].second - blocks[i].first),
                   parsed[i], bad[i], memos[worker]);
      },
      /*chunk=*/1);  // blocks are coarse; claim one at a time for balance
  local.parse_s = Seconds(parse_start);

  // Gather in strict block (= file) order.
  const auto assemble_start = std::chrono::steady_clock::now();
  for (const std::size_t n : bad) local.malformed += n;
  std::vector<SyslogRecord> records;
  if (parsed.size() == 1) {
    records = std::move(parsed.front());
  } else {
    std::size_t total = 0;
    for (const auto& chunk : parsed) total += chunk.size();
    records.reserve(total);
    for (auto& chunk : parsed) {
      for (SyslogRecord& rec : chunk) records.push_back(std::move(rec));
      chunk.clear();
      chunk.shrink_to_fit();
    }
  }
  local.records = records.size();
  local.assemble_s = Seconds(assemble_start);

  PublishMetrics(options.metrics, local);
  if (stats != nullptr) *stats = local;
  return records;
}

std::vector<SyslogRecord> ReadArchiveFileParallel(
    const std::string& path, const IngestOptions& options,
    IngestStats* stats, bool* ok) {
  const auto read_start = std::chrono::steady_clock::now();
  FileBytes file;
  if (!file.Open(path)) {
    if (ok != nullptr) *ok = false;
    if (stats != nullptr) *stats = IngestStats{};
    return {};
  }
  if (ok != nullptr) *ok = true;
  const double read_s = Seconds(read_start);
  IngestStats local;
  auto records = ParseArchive(file.data(), options, &local);
  local.read_s = read_s;
  if (options.metrics != nullptr) {
    options.metrics
        ->AddCounter("ingest_phase_duration_us",
                     "Ingest wall clock by phase", {{"phase", "read"}})
        ->Inc(static_cast<std::uint64_t>(read_s * 1e6));
  }
  if (stats != nullptr) *stats = local;
  return records;
}

}  // namespace sld::syslog
