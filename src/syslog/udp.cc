#include "syslog/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace sld::syslog {
namespace {

bool ParseAddr(std::string_view host, std::uint16_t port,
               sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string host_str(host);
  return inet_pton(AF_INET, host_str.c_str(), &addr.sin_addr) == 1;
}

}  // namespace

// ---- UdpSender ------------------------------------------------------------

std::optional<UdpSender> UdpSender::Open(std::string_view host,
                                         std::uint16_t port) {
  sockaddr_in addr{};
  if (!ParseAddr(host, port, addr)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  return UdpSender(fd);
}

UdpSender::UdpSender(UdpSender&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      sent_(std::exchange(other.sent_, 0)) {}

UdpSender& UdpSender::operator=(UdpSender&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    sent_ = std::exchange(other.sent_, 0);
  }
  return *this;
}

UdpSender::~UdpSender() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSender::Send(std::string_view datagram) {
  if (fd_ < 0) return false;
  const ssize_t n = ::send(fd_, datagram.data(), datagram.size(), 0);
  if (n != static_cast<ssize_t>(datagram.size())) return false;
  ++sent_;
  return true;
}

// ---- UdpReceiver ------------------------------------------------------------

std::optional<UdpReceiver> UdpReceiver::Bind(std::uint16_t port,
                                             const BindOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  if (options.reuse_port) {
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  if (options.track_overflow) {
    const int one = 1;
    // Best-effort: a kernel without SO_RXQ_OVFL simply reports no drops.
    ::setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
  }
  // Deep receive buffer: syslog bursts arrive faster than a digest pump
  // can drain, and UDP has no flow control — a few MiB of kernel buffer
  // is what stands between a burst and silent loss.  The kernel clamps
  // the request to net.core.rmem_max, so the result is read back below
  // and surfaced (wire_rcvbuf_bytes gauge) instead of being assumed.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf_bytes,
               sizeof(options.rcvbuf_bytes));
  int granted = 0;
  socklen_t granted_len = sizeof(granted);
  if (::getsockopt(fd, SOL_SOCKET, SO_RCVBUF, &granted, &granted_len) != 0) {
    granted = 0;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  return UdpReceiver(fd, ntohs(addr.sin_port), granted);
}

UdpReceiver::UdpReceiver(UdpReceiver&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      rcvbuf_bytes_(std::exchange(other.rcvbuf_bytes_, 0)),
      received_(std::exchange(other.received_, 0)) {}

UdpReceiver& UdpReceiver::operator=(UdpReceiver&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    rcvbuf_bytes_ = std::exchange(other.rcvbuf_bytes_, 0);
    received_ = std::exchange(other.received_, 0);
  }
  return *this;
}

UdpReceiver::~UdpReceiver() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpReceiver::Receive(std::string* reuse, int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return false;
  // Append in place: grow to the UDP maximum, recv into the tail, trim.
  // Once the buffer's capacity has grown past old_size + 64 KiB this
  // allocates nothing, which is what makes a reused buffer a zero-alloc
  // steady state.
  const std::size_t old_size = reuse->size();
  reuse->resize(old_size + 65536);
  const ssize_t n = ::recv(fd_, reuse->data() + old_size, 65536, 0);
  if (n < 0) {
    reuse->resize(old_size);
    return false;
  }
  reuse->resize(old_size + static_cast<std::size_t>(n));
  ++received_;
  return true;
}

}  // namespace sld::syslog
