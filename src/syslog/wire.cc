#include "syslog/wire.h"

#include <array>
#include <cstdio>

#include "common/strings.h"

namespace sld::syslog {
namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

std::string_view MonthAbbrev(int month) noexcept {
  if (month < 1 || month > 12) return "";
  return kMonths[static_cast<std::size_t>(month - 1)];
}

int MonthFromAbbrev(std::string_view abbrev) noexcept {
  for (std::size_t i = 0; i < kMonths.size(); ++i) {
    if (kMonths[i] == abbrev) return static_cast<int>(i + 1);
  }
  return 0;
}

void AppendRfc3164(const SyslogRecord& rec, std::string* out) {
  int severity = VendorSeverity(rec.code);
  if (severity < 0) severity = 0;
  if (severity > 7) severity = 7;
  const int pri = kRouterFacility * 8 + severity;
  const CivilTime ct = ToCivil(rec.time);
  const std::string_view month = MonthAbbrev(ct.month);
  char head[64];
  // RFC 3164 pads single-digit days with a space, not a zero.  The
  // month abbreviation is formatted as a bounded string_view — no
  // temporary std::string on this hot path.
  const int n = std::snprintf(head, sizeof(head), "<%d>%.*s %2d %02d:%02d:%02d ",
                              pri, static_cast<int>(month.size()), month.data(),
                              ct.day, ct.hour, ct.minute, ct.second);
  out->append(head, static_cast<std::size_t>(n));
  *out += rec.router;
  *out += " %";
  *out += rec.code;
  *out += ": ";
  *out += rec.detail;
}

std::string EncodeRfc3164(const SyslogRecord& rec) {
  std::string out;
  AppendRfc3164(rec, &out);
  return out;
}

std::optional<SyslogRecord> DecodeRfc3164(std::string_view datagram,
                                          int year) {
  if (datagram.size() < 5 || datagram[0] != '<') return std::nullopt;
  const std::size_t close = datagram.find('>');
  if (close == std::string_view::npos || close > 4) return std::nullopt;
  const auto pri = ParseInt(datagram.substr(1, close - 1));
  if (!pri || *pri > 191) return std::nullopt;

  std::string_view rest = datagram.substr(close + 1);
  // "Mmm dd HH:MM:SS " — day may be space-padded.
  if (rest.size() < 16) return std::nullopt;
  const int month = MonthFromAbbrev(rest.substr(0, 3));
  if (month == 0 || rest[3] != ' ') return std::nullopt;
  std::string_view day_str = Trim(rest.substr(4, 2));
  const auto day = ParseInt(day_str);
  if (!day || *day < 1 || *day > 31) return std::nullopt;
  if (rest[6] != ' ') return std::nullopt;
  const std::string_view clock = rest.substr(7, 8);
  const auto hour = ParseInt(clock.substr(0, 2));
  const auto minute = ParseInt(clock.substr(3, 2));
  const auto second = ParseInt(clock.substr(6, 2));
  if (!hour || !minute || !second || clock[2] != ':' || clock[5] != ':') {
    return std::nullopt;
  }
  if (*hour > 23 || *minute > 59 || *second > 59) return std::nullopt;
  if (*day > DaysInMonth(year, month)) return std::nullopt;

  CivilTime ct;
  ct.year = year;
  ct.month = month;
  ct.day = static_cast<int>(*day);
  ct.hour = static_cast<int>(*hour);
  ct.minute = static_cast<int>(*minute);
  ct.second = static_cast<int>(*second);

  // The byte after the clock must be the separator space; without this
  // check "<34>Aug  9 12:00:00Xhost %C: d" would parse with host
  // "Xhost" instead of being rejected as malformed.
  if (rest[15] != ' ') return std::nullopt;
  rest = Trim(rest.substr(16));
  const std::size_t host_end = rest.find(' ');
  if (host_end == std::string_view::npos) return std::nullopt;
  SyslogRecord rec;
  rec.time = ToTimeMs(ct);
  rec.router = std::string(rest.substr(0, host_end));
  rest = Trim(rest.substr(host_end));
  // "%CODE: detail"
  if (rest.empty() || rest[0] != '%') return std::nullopt;
  const std::size_t colon = rest.find(": ");
  if (colon == std::string_view::npos) {
    // A code with no detail text ("%CODE:").
    if (rest.back() == ':') {
      rec.code = std::string(rest.substr(1, rest.size() - 2));
      return rec.code.empty() ? std::nullopt
                              : std::optional<SyslogRecord>(rec);
    }
    return std::nullopt;
  }
  rec.code = std::string(rest.substr(1, colon - 1));
  rec.detail = std::string(rest.substr(colon + 2));
  if (rec.code.empty()) return std::nullopt;
  return rec;
}

}  // namespace sld::syslog
