// Block-based parallel archive ingest.
//
// The serial ReadArchive (archive.h) is a getline loop: one line copy,
// redundant Trim passes and an optional<SyslogRecord> round trip per
// record.  At the paper's "millions of messages per day" scale the
// ingest front is the first bottleneck, so this reader:
//
//   - maps (or, when mmap is unavailable, reads) the file into one
//     contiguous buffer,
//   - splits the buffer into fixed-size blocks snapped forward to the
//     next newline — boundaries depend only on the bytes and the block
//     size, never on the thread count,
//   - parses blocks concurrently on an sld::ThreadPool, each worker
//     carrying its own TimestampMemo so the "YYYY-MM-DD" prefix is
//     re-derived only when the calendar date changes (syslog time is
//     near-monotonic, so this hits on almost every line),
//   - gathers per-block outputs in strict file order.
//
// The contract matches PR 4's learner: the result is bit-identical to
// serial ReadArchive at any thread count — same records, same order,
// same malformed count (ingest_test sweeps 1/4/16 threads; bench_ingest
// re-verifies on every rep).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "syslog/record.h"

namespace sld::obs {
class Registry;
}  // namespace sld::obs

namespace sld::syslog {

struct IngestOptions {
  // Parse workers, caller included; <= 0 means one per hardware core.
  int threads = 1;
  // Target block size; boundaries snap forward to the next newline.
  std::size_t block_bytes = 4u << 20;
  // When set, publishes the ingest_* series (bytes, records, malformed,
  // blocks, per-phase durations) into this registry.  Cold path only:
  // cells are registered once per read call.
  obs::Registry* metrics = nullptr;
};

// Phase breakdown and totals of one ingest call.
struct IngestStats {
  std::size_t bytes = 0;
  std::size_t blocks = 0;
  std::size_t records = 0;
  std::size_t malformed = 0;
  int threads = 1;
  double read_s = 0.0;      // file map / read
  double parse_s = 0.0;     // concurrent block parse
  double assemble_s = 0.0;  // ordered gather
};

// Parses archive text already in memory (the zero-copy core; record
// fields are the only per-record allocations).  Blank lines and '#'
// comments are skipped; malformed lines are counted.
std::vector<SyslogRecord> ParseArchive(std::string_view data,
                                       const IngestOptions& options = {},
                                       IngestStats* stats = nullptr);

// Reads a file via mmap (fallback: buffered read) and parses it with
// ParseArchive.  Returns empty on open failure (and sets `*ok` to false
// when provided) — same convention as ReadArchiveFile.
std::vector<SyslogRecord> ReadArchiveFileParallel(
    const std::string& path, const IngestOptions& options = {},
    IngestStats* stats = nullptr, bool* ok = nullptr);

}  // namespace sld::syslog
