// Syslog archive files: one canonical record line per row
// ("YYYY-MM-DD HH:MM:SS <router> <code> <detail...>").
//
// This is the at-rest form collectors write and the offline learner reads
// back — months of history live in such files in production.  Reading is
// tolerant: malformed rows are counted, not fatal.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "syslog/record.h"

namespace sld::syslog {

// Writes records as archive lines.
void WriteArchive(std::ostream& out, std::span<const SyslogRecord> records);
// Convenience: writes to a file; returns false on I/O failure.
bool WriteArchiveFile(const std::string& path,
                      std::span<const SyslogRecord> records);

// Reads an archive; malformed lines are skipped (and counted when
// `malformed` is non-null).  Blank lines and '#' comments are ignored.
std::vector<SyslogRecord> ReadArchive(std::istream& in,
                                      std::size_t* malformed = nullptr);
// Convenience: reads a file; returns empty on open failure (and sets
// `*ok` to false when provided).
std::vector<SyslogRecord> ReadArchiveFile(const std::string& path,
                                          std::size_t* malformed = nullptr,
                                          bool* ok = nullptr);

}  // namespace sld::syslog
