// Syslog collector: ingests wire datagrams, tolerates bounded reordering,
// and releases records in timestamp order.
//
// In production, messages from thousands of routers interleave at the
// collector and can arrive slightly out of order (network jitter, NTP
// skew).  Every miner in this library assumes a time-sorted stream, so the
// collector holds a sliding reorder buffer: a record is released once the
// newest ingested timestamp is at least `hold_ms` ahead of it.
//
// Release boundary: a record is "late" only when its timestamp is
// STRICTLY older than the released watermark.  A record that shares a
// timestamp with an already-released record is still accepted — released
// output stays non-decreasing either way, and at syslog's 1-second
// granularity same-second arrivals split across a Drain() are endemic
// (dropping them would silently lose legitimate traffic).  Under
// suppress_duplicates, a tie that is byte-equal to a record already
// released at the boundary second IS dropped: that is a wire duplicate
// straddling a drain, and the same rule makes a full resend after a
// checkpoint restore exactly idempotent (DESIGN.md §14).
//
// Lifecycle: Flush() ends an epoch.  It releases everything buffered and
// RESETS the watermarks, so a collector reused after an end-of-stream
// flush classifies the next epoch's records from a clean slate instead of
// rejecting them against the previous epoch's clock.  The loss/accept
// counters are cumulative across epochs (they are monitoring totals).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "syslog/record.h"
#include "syslog/wire.h"

namespace sld::obs {
class Registry;
}  // namespace sld::obs

namespace sld::ckpt {
class Writer;
class Reader;
}  // namespace sld::ckpt

namespace sld::syslog {

class Collector {
 public:
  // `hold_ms`: how long a record may linger waiting for stragglers.
  // `year`: reference year for RFC 3164 timestamps.
  // `suppress_duplicates`: drop a record identical (time, router, code,
  // detail) to one still in the reorder buffer — UDP may duplicate
  // datagrams in flight.
  explicit Collector(TimeMs hold_ms = 5 * kMsPerSecond, int year = 2009,
                     bool suppress_duplicates = false)
      : hold_ms_(hold_ms),
        year_(year),
        suppress_duplicates_(suppress_duplicates) {}

  // Ingests one wire datagram. Returns false (and counts the drop) when
  // the datagram is malformed or strictly older than the release
  // watermark.  On acceptance, `accepted_time` (when non-null) receives
  // the record's stream timestamp — the key the engine's ingest-to-emit
  // latency tags are filed under.
  bool IngestDatagram(std::string_view datagram,
                      TimeMs* accepted_time = nullptr);

  // Ingests an already-parsed record (e.g. from a file).
  bool IngestRecord(SyslogRecord rec, TimeMs* accepted_time = nullptr);

  // Records whose release time has passed, in timestamp order.
  // Ties are released in arrival order.
  std::vector<SyslogRecord> Drain();

  // Releases everything still buffered and resets the epoch (end of
  // stream); the collector may be reused afterwards.
  std::vector<SyslogRecord> Flush();

  // Registers this collector's metrics (collector_* series) with `reg`
  // and mirrors every counter/gauge into it from then on.  `reg` must
  // outlive the collector.  Invariants the snapshot maintains:
  //   accepted = released + buffered
  //   ingested = accepted + late + malformed + duplicates
  void BindMetrics(obs::Registry* reg);

  std::size_t buffered() const noexcept { return buffer_.size(); }
  std::size_t malformed_count() const noexcept { return malformed_; }
  std::size_t late_count() const noexcept { return late_; }
  std::size_t accepted_count() const noexcept { return accepted_; }
  std::size_t duplicate_count() const noexcept { return duplicates_; }
  std::size_t released_count() const noexcept { return released_; }
  // Entries in the duplicate-suppression window (tracks the buffer).
  std::size_t duplicate_window_size() const noexcept {
    return buffered_hashes_.size();
  }

  // Test seam: overrides the duplicate-identity hash so suppression edge
  // cases (hash collisions between non-equal records) are reachable.
  using HashFn = std::size_t (*)(const SyslogRecord&);
  void SetHashForTesting(HashFn fn) { hash_fn_ = fn; }

  // Checkpointing (DESIGN.md §14): serializes/restores the watermarks,
  // the reorder buffer (in release order), the released-boundary
  // duplicate window, and the cumulative counters.  LoadState expects a
  // freshly constructed collector (same hold_ms/year/suppress options)
  // and returns false on a malformed snapshot section.
  void SaveState(ckpt::Writer* w) const;
  bool LoadState(ckpt::Reader* r);

 private:
  static std::size_t HashRecord(const SyslogRecord& rec) noexcept;
  std::size_t Hash(const SyslogRecord& rec) const noexcept {
    return hash_fn_ != nullptr ? hash_fn_(rec) : HashRecord(rec);
  }
  void SyncGauges() noexcept;

  TimeMs hold_ms_;
  int year_;
  bool suppress_duplicates_;
  HashFn hash_fn_ = nullptr;
  TimeMs watermark_ = INT64_MIN;  // newest timestamp seen this epoch
  TimeMs released_through_ = INT64_MIN;
  std::multimap<TimeMs, SyslogRecord> buffer_;
  // Hashes of buffered records (duplicate suppression window).
  std::multiset<std::size_t> buffered_hashes_;
  // Records already released at time == released_through_ (the release
  // boundary), kept only under suppress_duplicates.  A late-tie arrival
  // equal to one of these is a wire duplicate of a record we already
  // released, not a fresh same-second record — it is dropped.  This also
  // makes a full resend after a checkpoint restore exactly idempotent.
  // Cleared whenever the boundary advances, so it holds at most one
  // second of released traffic.
  std::vector<SyslogRecord> boundary_records_;
  std::multiset<std::size_t> boundary_hashes_;
  std::size_t malformed_ = 0;
  std::size_t late_ = 0;
  std::size_t accepted_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t released_ = 0;

  // Metric cells (null until BindMetrics).
  struct Cells {
    obs::Counter* accepted = nullptr;
    obs::Counter* released = nullptr;
    obs::Counter* late = nullptr;
    obs::Counter* malformed = nullptr;
    obs::Counter* duplicates = nullptr;
    obs::Gauge* buffered = nullptr;       // reorder-buffer depth
    obs::Gauge* release_lag_ms = nullptr; // watermark - released_through
  } cells_;
};

}  // namespace sld::syslog
