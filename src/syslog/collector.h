// Syslog collector: ingests wire datagrams, tolerates bounded reordering,
// and releases records in timestamp order.
//
// In production, messages from thousands of routers interleave at the
// collector and can arrive slightly out of order (network jitter, NTP
// skew).  Every miner in this library assumes a time-sorted stream, so the
// collector holds a sliding reorder buffer: a record is released once the
// newest ingested timestamp is at least `hold_ms` ahead of it.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string_view>
#include <vector>

#include "syslog/record.h"
#include "syslog/wire.h"

namespace sld::syslog {

class Collector {
 public:
  // `hold_ms`: how long a record may linger waiting for stragglers.
  // `year`: reference year for RFC 3164 timestamps.
  // `suppress_duplicates`: drop a record identical (time, router, code,
  // detail) to one still in the reorder buffer — UDP may duplicate
  // datagrams in flight.
  explicit Collector(TimeMs hold_ms = 5 * kMsPerSecond, int year = 2009,
                     bool suppress_duplicates = false)
      : hold_ms_(hold_ms),
        year_(year),
        suppress_duplicates_(suppress_duplicates) {}

  // Ingests one wire datagram. Returns false (and counts the drop) when
  // the datagram is malformed or older than the release watermark.
  bool IngestDatagram(std::string_view datagram);

  // Ingests an already-parsed record (e.g. from a file).
  bool IngestRecord(SyslogRecord rec);

  // Records whose release time has passed, in timestamp order.
  // Ties are released in arrival order.
  std::vector<SyslogRecord> Drain();

  // Releases everything still buffered (end of stream).
  std::vector<SyslogRecord> Flush();

  std::size_t buffered() const noexcept { return buffer_.size(); }
  std::size_t malformed_count() const noexcept { return malformed_; }
  std::size_t late_count() const noexcept { return late_; }
  std::size_t accepted_count() const noexcept { return accepted_; }
  std::size_t duplicate_count() const noexcept { return duplicates_; }

 private:
  static std::size_t HashRecord(const SyslogRecord& rec) noexcept;

  TimeMs hold_ms_;
  int year_;
  bool suppress_duplicates_;
  TimeMs watermark_ = INT64_MIN;  // newest timestamp seen
  TimeMs released_through_ = INT64_MIN;
  std::multimap<TimeMs, SyslogRecord> buffer_;
  // Hashes of buffered records (duplicate suppression window).
  std::multiset<std::size_t> buffered_hashes_;
  std::size_t malformed_ = 0;
  std::size_t late_ = 0;
  std::size_t accepted_ = 0;
  std::size_t duplicates_ = 0;
};

}  // namespace sld::syslog
