// RFC 3164 (BSD syslog) wire framing.
//
// Routers transmit syslog to collectors over the standardized syslog
// protocol (§2 of the paper cites the syslog RFC); the *payload* is the
// free-form part.  We implement the classic BSD framing:
//
//   <PRI>Mmm dd HH:MM:SS hostname %CODE: detail
//
// PRI = facility * 8 + severity.  The RFC 3164 timestamp has no year and
// second granularity, so the decoder takes a reference year.  Round-
// tripping through this codec is exactly the lossy ingestion path a real
// collector deals with.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "syslog/record.h"

namespace sld::syslog {

// Facility used for router-originated messages (local7, the conventional
// choice on routers).
inline constexpr int kRouterFacility = 23;

// Encodes a record into an RFC 3164 datagram payload.  The severity is
// taken from the record's error code (vendor severity, clamped to [0,7]).
std::string EncodeRfc3164(const SyslogRecord& rec);

// Appends the encoding of `rec` to *out.  With a reused buffer the
// steady state is allocation-free, which is what the replay/generator
// hot paths want (bench_ckpt audits this).
void AppendRfc3164(const SyslogRecord& rec, std::string* out);

// Decodes an RFC 3164 datagram.  `year` supplies the missing year field.
// Returns nullopt for malformed datagrams.
std::optional<SyslogRecord> DecodeRfc3164(std::string_view datagram,
                                          int year);

// Month name <-> number helpers (exposed for tests).
std::string_view MonthAbbrev(int month) noexcept;       // 1-based
int MonthFromAbbrev(std::string_view abbrev) noexcept;  // 0 when unknown

}  // namespace sld::syslog
