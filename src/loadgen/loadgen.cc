#include "loadgen/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "syslog/wire.h"

namespace sld::loadgen {
namespace {

// Random words consumed per message: [0] identity (router/shape/value),
// [1] duplicate, [2] drop, [3] reorder.
constexpr std::size_t kWordsPerMsg = 4;

constexpr std::array<std::string_view, 6> kUsers = {
    "admin", "neteng", "oper1", "noc", "backup", "nagios"};

// Maps a probability to a 64-bit threshold so the decision is a single
// compare against a uniform word: hit iff word < Threshold(p).
std::uint64_t Threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ULL;
  const double scaled = std::ldexp(p, 64);
  if (scaled >= 18446744073709551616.0) return ~0ULL;
  return static_cast<std::uint64_t>(scaled);
}

}  // namespace

Stream::Stream(const StreamOptions& options,
               std::atomic<std::uint64_t>* cursor, std::uint64_t total)
    : options_(options),
      cursor_(cursor),
      total_(total),
      dup_threshold_(Threshold(options.faults.duplicate)),
      drop_threshold_(Threshold(options.faults.drop)),
      reorder_threshold_(Threshold(options.faults.reorder)) {
  if (options_.batch < 1) options_.batch = 1;
  if (options_.routers < 1) options_.routers = 1;
  if (options_.msgs_per_vsec < 1) options_.msgs_per_vsec = 1;
  char buf[64];
  for (int r = 0; r < options_.routers; ++r) {
    std::snprintf(buf, sizeof(buf), "lg-rtr%03d", r);
    router_names_.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "GigabitEthernet%d/0/%d", r / 10,
                  r % 10);
    ifnames_.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "10.20.%d.%d", r / 250, r % 250 + 1);
    ips_.emplace_back(buf);
  }
}

std::size_t Stream::RenderRound() {
  const auto batch = static_cast<std::uint64_t>(options_.batch);
  const std::uint64_t start =
      cursor_->fetch_add(batch, std::memory_order_relaxed);
  if (start >= total_) return 0;
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(batch, total_ - start));

  // The word pool is keyed by the block id, not by this stream's draw
  // history, so every message's fault decisions are a pure function of
  // (seed, batch, index) — identical for any thread count or schedule.
  words_.resize(n * kWordsPerMsg);
  Rng block_rng(options_.seed ^
                (0x9e3779b97f4a7c15ULL * (start / batch + 1)));
  block_rng.FillUniform64(words_);

  slab_.clear();
  wire_slots_.clear();
  for (std::size_t k = 0; k < n; ++k) {
    RenderOne(start + k, &words_[k * kWordsPerMsg]);
  }
  return n;
}

void Stream::RenderOne(std::uint64_t index, const std::uint64_t* w) {
  const std::uint64_t identity = w[0];
  const auto r = static_cast<std::size_t>((identity >> 24) %
                                          router_names_.size());
  const auto shape = static_cast<unsigned>(identity >> 56) & 7u;
  const std::uint64_t value = identity & 0xffffff;
  const bool up = (value & 1) != 0;

  rec_.time = options_.epoch +
              static_cast<TimeMs>((index * 1000) /
                                  static_cast<std::uint64_t>(
                                      options_.msgs_per_vsec));
  rec_.router.assign(router_names_[r]);

  switch (shape) {
    case 0:
      sim::V1LinkUpDown(ifnames_[r], up, &msg_);
      break;
    case 1:
      sim::V1LineProtoUpDown(ifnames_[r], up, &msg_);
      break;
    case 2:
      sim::V1BgpAdj(ips_[r], up,
                    static_cast<sim::BgpDownReason>((value >> 1) & 3),
                    &msg_);
      break;
    case 3:
      sim::V1NtpSync(ips_[r], &msg_);
      break;
    case 4:
      sim::V2PortState(ifnames_[r], up, &msg_);
      break;
    case 5:
      sim::V2ServiceState(1000 + static_cast<int>(value % 200), up, &msg_);
      break;
    case 6:
      sim::V2SshLoginFailed(kUsers[value % kUsers.size()], ips_[r], &msg_);
      break;
    default:
      sim::RareNoise(up,
                     static_cast<int>((value >> 1) % sim::kRareNoiseVariants),
                     static_cast<long long>(value % 500000) + 1, &msg_);
      break;
  }
  rec_.code.assign(msg_.code);
  rec_.detail.assign(msg_.detail);

  ++stats_.generated;
  const bool dup = w[1] < dup_threshold_;
  const bool drop = w[2] < drop_threshold_;
  if (dup) ++stats_.duplicates;

  const std::size_t offset = slab_.size();
  syslog::AppendRfc3164(rec_, &slab_);
  const auto length = static_cast<std::uint32_t>(slab_.size() - offset);

  if (drop) {
    // All wire copies of this message are withheld, duplicate included,
    // so sent (= generated + duplicates) still equals wire +
    // injected_drops.
    stats_.injected_drops += dup ? 2u : 1u;
    return;
  }
  const std::size_t copies = dup ? 2 : 1;
  wire_slots_.push_back({static_cast<std::uint32_t>(offset), length});
  if (dup) {
    wire_slots_.push_back({static_cast<std::uint32_t>(offset), length});
  }
  // Reorder: move the previous staged message after this one's first
  // copy (an adjacent swap, the classic UDP mild-reorder shape).
  if (w[3] < reorder_threshold_ && wire_slots_.size() > copies) {
    std::swap(wire_slots_[wire_slots_.size() - copies - 1],
              wire_slots_[wire_slots_.size() - copies]);
    ++stats_.reorders;
  }
}

bool Stream::Transmit(int fd) {
  const std::size_t n = wire_slots_.size();
  if (n == 0) return true;
  // Pointers into the slab are resolved only now, after the slab has
  // stopped growing for the round.
  hdrs_.assign(n, mmsghdr{});
  iovs_.resize(n);
  char* base = slab_.data();
  for (std::size_t i = 0; i < n; ++i) {
    iovs_[i].iov_base = base + wire_slots_[i].offset;
    iovs_[i].iov_len = wire_slots_[i].length;
    hdrs_[i].msg_hdr.msg_iov = &iovs_[i];
    hdrs_[i].msg_hdr.msg_iovlen = 1;
  }
  std::size_t done = 0;
  while (done < n) {
    const int sent = ::sendmmsg(fd, hdrs_.data() + done,
                                static_cast<unsigned>(n - done), 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == ENOBUFS) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(sent);
    stats_.wire += static_cast<std::uint64_t>(sent);
  }
  return true;
}

RunResult Run(const RunOptions& options) {
  RunResult result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    result.error = "unparseable host (IPv4 literal required): " + options.host;
    return result;
  }

  const int threads = std::max(1, options.threads);
  std::vector<int> fds(static_cast<std::size_t>(threads), -1);
  for (int i = 0; i < threads; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      if (fd >= 0) ::close(fd);
      for (const int open_fd : fds) {
        if (open_fd >= 0) ::close(open_fd);
      }
      result.error = std::string("socket/connect: ") + std::strerror(errno);
      return result;
    }
    fds[static_cast<std::size_t>(i)] = fd;
  }

  std::atomic<std::uint64_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::vector<StreamStats> per_thread(static_cast<std::size_t>(threads));
  const double per_rate = options.rate > 0 ? options.rate / threads : 0.0;
  const double bucket =
      options.burst > 0 ? options.burst : 4.0 * options.stream.batch;
  const double per_burst =
      std::max<double>(options.stream.batch, bucket / threads);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      Stream stream(options.stream, &cursor, options.total);
      double tokens = per_burst;
      auto last = std::chrono::steady_clock::now();
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t n = stream.RenderRound();
        if (n == 0) break;
        if (per_rate > 0) {
          for (;;) {
            const auto now = std::chrono::steady_clock::now();
            tokens = std::min(
                per_burst,
                tokens + std::chrono::duration<double>(now - last).count() *
                             per_rate);
            last = now;
            if (tokens >= static_cast<double>(n)) {
              tokens -= static_cast<double>(n);
              break;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
        if (!stream.Transmit(fds[static_cast<std::size_t>(i)])) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          result.error = std::string("sendmmsg: ") + std::strerror(errno);
          failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
      per_thread[static_cast<std::size_t>(i)] = stream.stats();
    });
  }
  for (std::thread& w : workers) w.join();
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const int fd : fds) {
    if (fd >= 0) ::close(fd);
  }
  for (const StreamStats& s : per_thread) result.stats += s;
  result.ok = !failed.load();
  return result;
}

}  // namespace sld::loadgen
