// Wire-rate batched syslog load generator.
//
// The repo's wire front (src/wirefront/) can drain on the order of a
// million datagrams per second, but nothing in the tree could *generate*
// that much — replay tools send one datagram per sendto().  This
// subsystem closes the gap: N sender threads render the simulator's
// vendor message formats (sim/messages.h appending overloads +
// AppendRfc3164) into a per-thread payload slab and hand them to the
// kernel in sendmmsg() batches, the transmit-side mirror of the
// wirefront's recvmmsg slab.
//
// Determinism contract: every stochastic decision (router pick, message
// shape, fault injection) is a pure function of (seed, message index).
// Message indices are claimed from a shared atomic cursor, so a run's
// *aggregate* fault counts depend only on (seed, total), regardless of
// thread count or scheduling — the property the slgen fault-knob tests
// pin down.  Per-message words come from Rng::FillUniform64 keyed by the
// index block, not from the scalar engine sequence.
//
// Virtual clock: the timestamp of message i is
//   epoch + i * 1000 / msgs_per_vsec        (milliseconds)
// Non-decreasing in i, so a receiving collector with a hold window of a
// few virtual seconds sees (almost) no late records even though threads
// interleave blocks; the ledger
//   sent = generated + duplicates = wire + injected_drops
// closes exactly on the sender side, and against a receiver's metrics as
//   sent = accepted + kernel_drops + malformed + injected_drops.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "sim/messages.h"
#include "syslog/record.h"

struct mmsghdr;
struct iovec;

namespace sld::loadgen {

// Fault-injection probabilities, all in [0, 1].
struct FaultKnobs {
  double duplicate = 0.0;  // send a second wire copy of the message
  double drop = 0.0;       // withhold the rendered message from the wire
  double reorder = 0.0;    // swap the message with its staged predecessor
};

// Knobs shared by every stream of a run.
struct StreamOptions {
  std::uint64_t seed = 1;
  int routers = 20;    // distinct synthetic router identities
  int batch = 64;      // messages claimed/rendered/sent per round
  FaultKnobs faults;
  TimeMs epoch = 0;    // virtual-clock origin (CLI defaults to the
                       // simulator's dataset epoch)
  std::int64_t msgs_per_vsec = 2000;  // indices per virtual second
};

struct StreamStats {
  std::uint64_t generated = 0;       // distinct messages rendered
  std::uint64_t duplicates = 0;      // extra wire copies injected
  std::uint64_t injected_drops = 0;  // rendered but withheld from the wire
  std::uint64_t reorders = 0;        // adjacent swaps performed
  std::uint64_t wire = 0;            // datagrams handed to the kernel

  // Everything that nominally left the generator: originals + duplicates.
  std::uint64_t sent() const { return generated + duplicates; }

  StreamStats& operator+=(const StreamStats& o) {
    generated += o.generated;
    duplicates += o.duplicates;
    injected_drops += o.injected_drops;
    reorders += o.reorders;
    wire += o.wire;
    return *this;
  }
};

// One staged datagram: a view into the round's payload slab.  Offsets are
// recorded during render and resolved to pointers only at transmit time,
// after the slab has stopped growing.
struct WireSlot {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

// A single sender stream.  Not thread-safe; each sender thread owns one.
// The render path is allocation-free at steady state: the slab, the slot
// table, the scratch record/message and the sendmmsg arrays all keep
// their capacity across rounds.
class Stream {
 public:
  // `cursor` / `total` define the shared run: each RenderRound claims up
  // to options.batch indices from [*cursor, total).
  Stream(const StreamOptions& options, std::atomic<std::uint64_t>* cursor,
         std::uint64_t total);

  // Claims a block of indices and renders them into the slab, applying
  // the fault knobs.  Returns the number of indices claimed (0 when the
  // run is exhausted).  Staged datagrams are in wire_slots().
  std::size_t RenderRound();

  // Transmits the staged round over a connected UDP socket with
  // sendmmsg(), retrying partial sends.  Returns false on a hard socket
  // error (stats().wire only counts what the kernel accepted).
  bool Transmit(int fd);

  const std::vector<WireSlot>& wire_slots() const { return wire_slots_; }
  std::string_view SlotPayload(const WireSlot& s) const {
    return std::string_view(slab_).substr(s.offset, s.length);
  }
  const StreamStats& stats() const { return stats_; }

 private:
  void RenderOne(std::uint64_t index, const std::uint64_t* words);

  StreamOptions options_;
  std::atomic<std::uint64_t>* cursor_;
  std::uint64_t total_;
  std::uint64_t dup_threshold_;
  std::uint64_t drop_threshold_;
  std::uint64_t reorder_threshold_;

  // Prebuilt identity tables (indexed by router slot).
  std::vector<std::string> router_names_;
  std::vector<std::string> ifnames_;
  std::vector<std::string> ips_;

  // Per-round state, reused across rounds.
  std::string slab_;
  std::vector<WireSlot> wire_slots_;
  std::vector<std::uint64_t> words_;
  syslog::SyslogRecord rec_;
  sim::Msg msg_;
  std::vector<::mmsghdr> hdrs_;
  std::vector<::iovec> iovs_;

  StreamStats stats_;
};

// A full multi-threaded run against a UDP destination.
struct RunOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t total = 100000;  // distinct messages across all threads
  int threads = 4;
  double rate = 0.0;   // msgs/s across all threads; 0 = unthrottled
  double burst = 0.0;  // token-bucket depth in msgs; 0 = 4 * batch
  StreamOptions stream;
};

struct RunResult {
  bool ok = false;
  std::string error;
  StreamStats stats;
  double elapsed_seconds = 0.0;
};

// Spawns options.threads sender threads, each with its own connected
// socket and Stream, paced by a per-thread token-bucket share of `rate`.
RunResult Run(const RunOptions& options);

}  // namespace sld::loadgen
