// Renders a router's configuration as vendor-style text.
//
// The paper's offline location learner works from router configs ("much
// better formatted and documented than syslog messages").  We therefore
// serialize the generated topology into realistic config text per router —
// IOS-like for V1, TiMOS-like for V2 — and make the digest pipeline parse
// that text back (config_parser.h), so the location dictionary is learned
// the same way it would be in production.
#pragma once

#include <string>

#include "net/topology.h"

namespace sld::net {

// The full configuration text for one router.
std::string WriteConfig(const Topology& topo, RouterId router);

// Convenience: configs for every router, indexed by RouterId.
std::vector<std::string> WriteAllConfigs(const Topology& topo);

}  // namespace sld::net
