#include "net/topology.h"

#include <algorithm>
#include <array>
#include <set>
#include <stdexcept>

#include "common/rng.h"

namespace sld::net {
namespace {

struct City {
  const char* code;
  const char* state;
};

// Airport-style city codes with their states, used to synthesize router
// names ("cr03.dllstx") and the state tags trouble tickets are matched on.
constexpr std::array<City, 16> kCities = {{
    {"dllstx", "TX"}, {"chcgil", "IL"}, {"nycmny", "NY"}, {"attlga", "GA"},
    {"sttlwa", "WA"}, {"sffrca", "CA"}, {"hstntx", "TX"}, {"dnvrco", "CO"},
    {"phlapa", "PA"}, {"miamfl", "FL"}, {"bstnma", "MA"}, {"kscymo", "MO"},
    {"ptldor", "OR"}, {"phnxaz", "AZ"}, {"mplsmn", "MN"}, {"clevoh", "OH"},
}};

std::string RouterName(Vendor vendor, int index) {
  const City& city = kCities[static_cast<std::size_t>(index) % kCities.size()];
  const char* prefix = vendor == Vendor::kV1 ? "cr" : "vho";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%02d.%s", prefix, index + 1, city.code);
  return buf;
}

std::string LoopbackIp(int index) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "192.168.%d.%d", index / 250,
                index % 250 + 1);
  return buf;
}

// /30 subnet per link out of 10.0.0.0/8.
std::string LinkIp(std::uint32_t link_index, int side) {
  const std::uint32_t base = link_index * 4;
  char buf[20];
  std::snprintf(buf, sizeof(buf), "10.%u.%u.%u", (base >> 16) & 255,
                (base >> 8) & 255, (base & 255) + 1 + static_cast<unsigned>(side));
  return buf;
}

// Secondary (non-link) logical interfaces draw from 172.16.0.0/12.
std::string SecondaryIp(std::uint32_t index) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "172.%u.%u.%u", 16 + ((index >> 16) & 15),
                (index >> 8) & 255, (index & 255));
  return buf;
}

std::string PhysName(Vendor vendor, int slot, int port) {
  char buf[40];
  if (vendor == Vendor::kV1) {
    // Even slots carry channelized serial interfaces (with a T1 controller),
    // odd slots carry gigabit ethernet — two distinct naming shapes, as in
    // real mixed-linecard chassis.
    if (slot % 2 == 0) {
      std::snprintf(buf, sizeof(buf), "Serial%d/%d", slot, port);
    } else {
      std::snprintf(buf, sizeof(buf), "GigabitEthernet%d/%d/0", slot, port);
    }
  } else {
    std::snprintf(buf, sizeof(buf), "%d/1/%d", slot + 1, port + 1);
  }
  return buf;
}

std::string LogicalName(Vendor vendor, const std::string& phys_name, int slot,
                        int sub) {
  char buf[48];
  if (vendor == Vendor::kV1) {
    if (slot % 2 == 0) {
      // Matches the paper's "Serial1/0.10/10:0" flavour.
      std::snprintf(buf, sizeof(buf), "%s.%d:0", phys_name.c_str(),
                    (sub + 1) * 10);
    } else {
      std::snprintf(buf, sizeof(buf), "%s.%d", phys_name.c_str(),
                    (sub + 1) * 10);
    }
  } else {
    if (sub == 0) return phys_name;  // untagged L3 interface on the port
    std::snprintf(buf, sizeof(buf), "%s.%d", phys_name.c_str(), sub);
  }
  return buf;
}

}  // namespace

std::string_view VendorName(Vendor v) noexcept {
  return v == Vendor::kV1 ? "V1" : "V2";
}

PhysIfId Topology::LinkEnd(LinkId link, RouterId router) const {
  const Link& l = links.at(link);
  if (l.router_a == router) return l.phys_a;
  if (l.router_b == router) return l.phys_b;
  return kInvalidId;
}

RouterId Topology::LinkPeer(LinkId link, RouterId router) const {
  const Link& l = links.at(link);
  if (l.router_a == router) return l.router_b;
  if (l.router_b == router) return l.router_a;
  return kInvalidId;
}

LogicalIfId Topology::PrimaryLogical(PhysIfId phys) const {
  const PhysIf& p = phys_ifs.at(phys);
  return p.logical_ifs.empty() ? kInvalidId : p.logical_ifs.front();
}

const Router* Topology::FindRouter(std::string_view name) const {
  for (const Router& r : routers) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

Topology GenerateTopology(const TopologyParams& params) {
  if (params.num_routers < 2) {
    throw std::invalid_argument("topology needs at least 2 routers");
  }
  if (params.slots_per_router < 1 || params.ports_per_slot < 1 ||
      params.subifs_per_phys < 1) {
    throw std::invalid_argument("topology needs slots, ports and subifs");
  }
  Rng rng(params.seed);
  Topology topo;

  // Routers, physical interfaces, logical sub-interfaces.
  for (int r = 0; r < params.num_routers; ++r) {
    Router router;
    router.id = static_cast<RouterId>(topo.routers.size());
    router.name = RouterName(params.vendor, r);
    router.vendor = params.vendor;
    router.loopback_ip = LoopbackIp(r);
    router.state = kCities[static_cast<std::size_t>(r) % kCities.size()].state;
    router.num_slots = params.slots_per_router;
    for (int slot = 0; slot < params.slots_per_router; ++slot) {
      for (int port = 0; port < params.ports_per_slot; ++port) {
        PhysIf phys;
        phys.id = static_cast<PhysIfId>(topo.phys_ifs.size());
        phys.router = router.id;
        phys.slot = slot;
        phys.port = port;
        phys.name = PhysName(params.vendor, slot, port);
        phys.has_controller = params.vendor == Vendor::kV1 && slot % 2 == 0;
        for (int sub = 0; sub < params.subifs_per_phys; ++sub) {
          LogicalIf logical;
          logical.id = static_cast<LogicalIfId>(topo.logical_ifs.size());
          logical.router = router.id;
          logical.phys = phys.id;
          logical.sub_id = sub;
          logical.name = LogicalName(params.vendor, phys.name, slot, sub);
          phys.logical_ifs.push_back(logical.id);
          topo.logical_ifs.push_back(std::move(logical));
        }
        router.phys_ifs.push_back(phys.id);
        topo.phys_ifs.push_back(std::move(phys));
      }
    }
    topo.routers.push_back(std::move(router));
  }

  // Free (not yet link-terminating, not bundled) interfaces per router.
  std::vector<std::vector<PhysIfId>> free_ifs(topo.routers.size());
  for (const Router& r : topo.routers) {
    free_ifs[r.id] = r.phys_ifs;
    rng.Shuffle(free_ifs[r.id]);
  }
  const auto take_if = [&](RouterId r) -> PhysIfId {
    if (free_ifs[r].empty()) return kInvalidId;
    const PhysIfId id = free_ifs[r].back();
    free_ifs[r].pop_back();
    return id;
  };

  std::set<std::pair<RouterId, RouterId>> linked_pairs;
  const auto add_link = [&](RouterId a, RouterId b) -> bool {
    if (a == b) return false;
    const auto key = std::minmax(a, b);
    if (linked_pairs.count({key.first, key.second}) != 0) return false;
    const PhysIfId pa = take_if(a);
    if (pa == kInvalidId) return false;
    const PhysIfId pb = take_if(b);
    if (pb == kInvalidId) {
      free_ifs[a].push_back(pa);
      return false;
    }
    Link link;
    link.id = static_cast<LinkId>(topo.links.size());
    link.router_a = a;
    link.router_b = b;
    link.phys_a = pa;
    link.phys_b = pb;
    topo.phys_ifs[pa].link = link.id;
    topo.phys_ifs[pb].link = link.id;
    linked_pairs.insert({key.first, key.second});
    topo.links.push_back(link);
    return true;
  };

  // Spanning tree keeps the network connected.
  for (RouterId r = 1; r < topo.routers.size(); ++r) {
    bool ok = false;
    for (int attempt = 0; attempt < 64 && !ok; ++attempt) {
      ok = add_link(r, static_cast<RouterId>(rng.Index(r)));
    }
    if (!ok) throw std::invalid_argument("not enough ports for spanning tree");
  }
  // Extra random links for realistic degree distribution.
  const int extra = static_cast<int>(params.num_routers *
                                     params.extra_link_factor);
  for (int i = 0; i < extra; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const RouterId a = static_cast<RouterId>(rng.Index(topo.routers.size()));
      const RouterId b = static_cast<RouterId>(rng.Index(topo.routers.size()));
      if (add_link(a, b)) break;
    }
  }

  // Multilink bundles over remaining free interfaces.
  for (Router& router : topo.routers) {
    for (int n = 0; n < params.bundles_per_router; ++n) {
      if (free_ifs[router.id].size() <
          static_cast<std::size_t>(params.bundle_width)) {
        break;
      }
      Bundle bundle;
      bundle.id = static_cast<BundleId>(topo.bundles.size());
      bundle.router = router.id;
      // Named by the network-wide bundle id so the config writer's group
      // numbers and the name agree.
      char buf[24];
      if (params.vendor == Vendor::kV1) {
        std::snprintf(buf, sizeof(buf), "Multilink%u", bundle.id + 1);
      } else {
        std::snprintf(buf, sizeof(buf), "lag-%u", bundle.id + 1);
      }
      bundle.name = buf;
      for (int m = 0; m < params.bundle_width; ++m) {
        const PhysIfId member = take_if(router.id);
        topo.phys_ifs[member].bundle = bundle.id;
        bundle.members.push_back(member);
      }
      router.bundles.push_back(bundle.id);
      topo.bundles.push_back(std::move(bundle));
    }
  }

  // Layer-3 addresses: link endpoints get the link /30; everything else
  // draws from the secondary pool.
  std::uint32_t secondary = 1;
  for (LogicalIf& logical : topo.logical_ifs) {
    const PhysIf& phys = topo.phys_ifs[logical.phys];
    if (phys.link.has_value() && logical.id == phys.logical_ifs.front()) {
      const Link& link = topo.links[*phys.link];
      const int side = link.router_a == logical.router ? 0 : 1;
      logical.ip = LinkIp(link.id, side);
    } else {
      logical.ip = SecondaryIp(secondary++);
    }
  }

  // iBGP sessions between loopbacks of directly linked routers.
  for (const Link& link : topo.links) {
    if (!rng.Bernoulli(0.5)) continue;
    BgpSession s;
    s.id = static_cast<SessionId>(topo.sessions.size());
    s.router_a = link.router_a;
    s.router_b = link.router_b;
    s.neighbor_ip_of_a = topo.routers[link.router_b].loopback_ip;
    s.neighbor_ip_of_b = topo.routers[link.router_a].loopback_ip;
    topo.routers[link.router_a].sessions.push_back(s.id);
    topo.routers[link.router_b].sessions.push_back(s.id);
    topo.sessions.push_back(std::move(s));
  }

  // eBGP VPN sessions to external customer-edge neighbors.
  std::uint32_t ce = 1;
  for (Router& router : topo.routers) {
    for (int n = 0; n < params.ebgp_sessions_per_router; ++n) {
      BgpSession s;
      s.id = static_cast<SessionId>(topo.sessions.size());
      s.router_a = router.id;
      s.router_b = kInvalidId;
      char ip[20];
      std::snprintf(ip, sizeof(ip), "192.168.%u.%u", 100 + ((ce >> 8) & 127),
                    ce & 255);
      ++ce;
      s.neighbor_ip_of_a = ip;
      char vrf[16];
      std::snprintf(vrf, sizeof(vrf), "1000:%u",
                    1000 + static_cast<unsigned>(rng.UniformInt(0, 31)));
      s.vrf = vrf;
      router.sessions.push_back(s.id);
      topo.sessions.push_back(std::move(s));
    }
  }

  // Multi-hop MPLS paths as random walks over the link graph.
  std::vector<std::vector<LinkId>> links_of(topo.routers.size());
  for (const Link& link : topo.links) {
    links_of[link.router_a].push_back(link.id);
    links_of[link.router_b].push_back(link.id);
  }
  for (int n = 0; n < params.num_paths; ++n) {
    Path path;
    path.id = static_cast<PathId>(topo.paths.size());
    RouterId at = static_cast<RouterId>(rng.Index(topo.routers.size()));
    path.hops.push_back(at);
    for (int hop = 0; hop < params.path_len; ++hop) {
      if (links_of[at].empty()) break;
      const LinkId link = rng.Pick(links_of[at]);
      const RouterId next = topo.LinkPeer(link, at);
      if (std::find(path.hops.begin(), path.hops.end(), next) !=
          path.hops.end()) {
        break;  // avoid loops; a shorter path is fine
      }
      path.links.push_back(link);
      path.hops.push_back(next);
      at = next;
    }
    if (path.hops.size() < 2) continue;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "mpls-path-%d", n + 1);
    path.name = buf;
    topo.paths.push_back(std::move(path));
  }

  return topo;
}

}  // namespace sld::net
