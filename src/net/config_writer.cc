#include "net/config_writer.h"

#include <cstdio>
#include <string>

namespace sld::net {
namespace {

void Append(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

// IOS-flavoured configuration.
std::string WriteV1(const Topology& topo, const Router& router) {
  std::string out;
  Append(out, "hostname %s\n!\n", router.name.c_str());
  Append(out, "interface Loopback0\n ip address %s 255.255.255.255\n!\n",
         router.loopback_ip.c_str());

  for (const PhysIfId pid : router.phys_ifs) {
    const PhysIf& phys = topo.phys_ifs[pid];
    if (phys.has_controller) {
      Append(out, "controller T1 %d/%d\n!\n", phys.slot, phys.port);
    }
    Append(out, "interface %s\n", phys.name.c_str());
    if (phys.link.has_value()) {
      const Link& link = topo.links[*phys.link];
      const RouterId peer = topo.LinkPeer(link.id, router.id);
      const PhysIfId peer_if = topo.LinkEnd(link.id, peer);
      Append(out, " description to %s %s\n", topo.routers[peer].name.c_str(),
             topo.phys_ifs[peer_if].name.c_str());
    }
    if (phys.bundle.has_value()) {
      Append(out, " ppp multilink group %u\n", *phys.bundle + 1);
    }
    out += " no ip address\n!\n";
    for (const LogicalIfId lid : phys.logical_ifs) {
      const LogicalIf& logical = topo.logical_ifs[lid];
      Append(out, "interface %s\n ip address %s 255.255.255.252\n!\n",
             logical.name.c_str(), logical.ip.c_str());
    }
  }

  for (const BundleId bid : router.bundles) {
    const Bundle& bundle = topo.bundles[bid];
    Append(out, "interface %s\n ppp multilink group %u\n!\n",
           bundle.name.c_str(), bid + 1);
  }

  out += "router bgp 7018\n";
  for (const SessionId sid : router.sessions) {
    const BgpSession& s = topo.sessions[sid];
    if (s.vrf.empty()) {
      const bool is_a = s.router_a == router.id;
      const std::string& neighbor =
          is_a ? s.neighbor_ip_of_a : s.neighbor_ip_of_b;
      Append(out, " neighbor %s remote-as 7018\n", neighbor.c_str());
    }
  }
  for (const SessionId sid : router.sessions) {
    const BgpSession& s = topo.sessions[sid];
    if (!s.vrf.empty()) {
      Append(out, " address-family ipv4 vrf %s\n", s.vrf.c_str());
      Append(out, "  neighbor %s remote-as 65001\n",
             s.neighbor_ip_of_a.c_str());
      out += " exit-address-family\n";
    }
  }
  out += "!\n";

  for (const Path& path : topo.paths) {
    if (path.hops.front() != router.id) continue;
    Append(out, "mpls traffic-eng tunnel %s\n", path.name.c_str());
    for (const RouterId hop : path.hops) {
      Append(out, " hop %s\n", topo.routers[hop].name.c_str());
    }
    out += "!\n";
  }
  return out;
}

// TiMOS-flavoured configuration.
std::string WriteV2(const Topology& topo, const Router& router) {
  std::string out;
  out += "configure\n";
  Append(out, "    system\n        name \"%s\"\n    exit\n",
         router.name.c_str());

  for (const PhysIfId pid : router.phys_ifs) {
    const PhysIf& phys = topo.phys_ifs[pid];
    Append(out, "    port %s\n", phys.name.c_str());
    if (phys.link.has_value()) {
      const Link& link = topo.links[*phys.link];
      const RouterId peer = topo.LinkPeer(link.id, router.id);
      const PhysIfId peer_if = topo.LinkEnd(link.id, peer);
      Append(out, "        description \"to %s %s\"\n",
             topo.routers[peer].name.c_str(),
             topo.phys_ifs[peer_if].name.c_str());
    }
    out += "    exit\n";
  }

  for (const BundleId bid : router.bundles) {
    const Bundle& bundle = topo.bundles[bid];
    Append(out, "    lag %u\n", bid + 1);
    for (const PhysIfId member : bundle.members) {
      Append(out, "        port %s\n", topo.phys_ifs[member].name.c_str());
    }
    out += "    exit\n";
  }

  out += "    router\n";
  Append(out,
         "        interface \"system\"\n            address %s/32\n"
         "        exit\n",
         router.loopback_ip.c_str());
  for (const PhysIfId pid : router.phys_ifs) {
    const PhysIf& phys = topo.phys_ifs[pid];
    for (const LogicalIfId lid : phys.logical_ifs) {
      const LogicalIf& logical = topo.logical_ifs[lid];
      Append(out, "        interface \"%s\"\n", logical.name.c_str());
      Append(out, "            address %s/30\n", logical.ip.c_str());
      Append(out, "            port %s\n", phys.name.c_str());
      out += "        exit\n";
    }
  }
  out += "        bgp\n";
  out += "            group \"internal\"\n";
  for (const SessionId sid : router.sessions) {
    const BgpSession& s = topo.sessions[sid];
    if (!s.vrf.empty()) continue;
    const bool is_a = s.router_a == router.id;
    Append(out, "                neighbor %s\n",
           (is_a ? s.neighbor_ip_of_a : s.neighbor_ip_of_b).c_str());
  }
  out += "            exit\n";
  for (const SessionId sid : router.sessions) {
    const BgpSession& s = topo.sessions[sid];
    if (s.vrf.empty()) continue;
    Append(out, "            group \"vpn-%s\"\n", s.vrf.c_str());
    Append(out, "                neighbor %s\n", s.neighbor_ip_of_a.c_str());
    out += "            exit\n";
  }
  out += "        exit\n    exit\n";

  for (const Path& path : topo.paths) {
    if (path.hops.front() != router.id) continue;
    Append(out, "    mpls path \"%s\"\n", path.name.c_str());
    for (std::size_t i = 0; i < path.hops.size(); ++i) {
      Append(out, "        hop %zu %s\n", i + 1,
             topo.routers[path.hops[i]].name.c_str());
    }
    out += "    exit\n";
  }
  out += "exit\n";
  return out;
}

}  // namespace

std::string WriteConfig(const Topology& topo, RouterId router) {
  const Router& r = topo.routers.at(router);
  return r.vendor == Vendor::kV1 ? WriteV1(topo, r) : WriteV2(topo, r);
}

std::vector<std::string> WriteAllConfigs(const Topology& topo) {
  std::vector<std::string> out;
  out.reserve(topo.routers.size());
  for (const Router& r : topo.routers) {
    out.push_back(WriteConfig(topo, r.id));
  }
  return out;
}

}  // namespace sld::net
