// Network model: routers, slots, ports, interfaces, bundles, links, BGP
// sessions, and multi-hop paths.
//
// This is the substrate the paper takes for granted: an operational network
// whose router configurations encode the location hierarchy of Fig. 3
// (router -> slot/line card -> port -> physical interface -> logical
// interface, plus logical constructs such as multilink bundles and
// cross-router links / sessions / paths).  SyslogDigest itself never reads
// these structs directly — it learns locations from the rendered config
// text (see config_writer.h / config_parser.h) exactly as the paper's
// offline component learns from real router configs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sld::net {

// Router vendor, selecting both config syntax and syslog message formats.
// kV1 is IOS-like (the paper's Cisco-flavoured examples); kV2 is
// TiMOS-like (the paper's "SNMP-WARNING-linkDown" flavoured examples).
enum class Vendor : std::uint8_t { kV1, kV2 };

std::string_view VendorName(Vendor v) noexcept;

using RouterId = std::uint32_t;
using PhysIfId = std::uint32_t;
using LogicalIfId = std::uint32_t;
using BundleId = std::uint32_t;
using LinkId = std::uint32_t;
using SessionId = std::uint32_t;
using PathId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = 0xffffffffu;

// A router chassis. `state` is a coarse geographic tag (e.g. "TX") used by
// the trouble-ticket matching methodology of §5.3.
struct Router {
  RouterId id = kInvalidId;
  std::string name;          // e.g. "cr01.dllstx" or "vho03.chcgil"
  Vendor vendor = Vendor::kV1;
  std::string loopback_ip;   // e.g. "192.168.0.1"
  std::string state;         // e.g. "TX"
  int num_slots = 0;
  std::vector<PhysIfId> phys_ifs;
  std::vector<BundleId> bundles;
  std::vector<SessionId> sessions;
};

// A physical layer-1/2 interface on a (slot, port) position.
struct PhysIf {
  PhysIfId id = kInvalidId;
  RouterId router = kInvalidId;
  int slot = 0;
  int port = 0;
  std::string name;  // V1: "Serial1/0:0"; V2: "1/1/1"
  std::vector<LogicalIfId> logical_ifs;
  // Set when this interface terminates an inter-router link.
  std::optional<LinkId> link;
  // Set when this interface is a member of a multilink bundle.
  std::optional<BundleId> bundle;
  // V1 channelized interfaces sit on a controller (e.g. "T1 1/0").
  bool has_controller = false;
};

// A logical (layer-3) sub-interface carrying an IP address.
struct LogicalIf {
  LogicalIfId id = kInvalidId;
  RouterId router = kInvalidId;
  PhysIfId phys = kInvalidId;
  int sub_id = 0;
  std::string name;  // V1: "Serial1/0.10:0"; V2: "0/0/1"
  std::string ip;    // e.g. "10.0.1.1"
};

// A multilink / bundle-link aggregating several physical interfaces.
struct Bundle {
  BundleId id = kInvalidId;
  RouterId router = kInvalidId;
  std::string name;  // e.g. "Multilink3" / "lag-3"
  std::vector<PhysIfId> members;
};

// A point-to-point link between physical interfaces on two routers.
// The layer-3 endpoints are the first logical sub-interface on each side.
struct Link {
  LinkId id = kInvalidId;
  RouterId router_a = kInvalidId;
  RouterId router_b = kInvalidId;
  PhysIfId phys_a = kInvalidId;
  PhysIfId phys_b = kInvalidId;
};

// A BGP session. eBGP-VPN sessions carry a VRF id ("1000:1001") and a
// remote CE neighbor address; iBGP sessions run between router loopbacks.
struct BgpSession {
  SessionId id = kInvalidId;
  RouterId router_a = kInvalidId;
  // For iBGP: the remote router. For eBGP-VPN: kInvalidId (CE is external).
  RouterId router_b = kInvalidId;
  std::string neighbor_ip_of_a;  // address A speaks to
  std::string neighbor_ip_of_b;  // address B speaks to (empty for eBGP)
  std::string vrf;               // empty for iBGP
};

// A multi-hop unidirectional path (e.g. an MPLS transport tunnel used as a
// secondary FRR path in the IPTV network of §6.1).
struct Path {
  PathId id = kInvalidId;
  std::string name;
  std::vector<RouterId> hops;
  std::vector<LinkId> links;  // links[i] connects hops[i] and hops[i+1]
};

// The whole network.  All cross-references are by dense index, so lookups
// are O(1) array accesses.
struct Topology {
  std::vector<Router> routers;
  std::vector<PhysIf> phys_ifs;
  std::vector<LogicalIf> logical_ifs;
  std::vector<Bundle> bundles;
  std::vector<Link> links;
  std::vector<BgpSession> sessions;
  std::vector<Path> paths;

  const Router& router(RouterId id) const { return routers.at(id); }
  const PhysIf& phys(PhysIfId id) const { return phys_ifs.at(id); }
  const LogicalIf& logical(LogicalIfId id) const { return logical_ifs.at(id); }

  // The physical interface on `router` terminating `link`.
  PhysIfId LinkEnd(LinkId link, RouterId router) const;
  // The router on the other side of `link` from `router`.
  RouterId LinkPeer(LinkId link, RouterId router) const;
  // First logical sub-interface of a physical interface (its L3 endpoint),
  // or kInvalidId if the interface has none.
  LogicalIfId PrimaryLogical(PhysIfId phys) const;
  // Finds a router by name; returns nullptr when absent.
  const Router* FindRouter(std::string_view name) const;
  // Total number of configured layer-3 addresses.
  std::size_t AddressCount() const noexcept { return logical_ifs.size(); }
};

// Generation parameters. Defaults produce a mid-size network; the dataset
// presets in sim/workload.h scale them per evaluation dataset.
struct TopologyParams {
  Vendor vendor = Vendor::kV1;
  int num_routers = 40;
  int slots_per_router = 4;
  int ports_per_slot = 4;
  int subifs_per_phys = 2;       // logical sub-interfaces per physical
  double extra_link_factor = 0.6;  // extra random links beyond spanning tree
  int bundles_per_router = 1;
  int bundle_width = 2;           // member interfaces per bundle
  int ebgp_sessions_per_router = 3;  // VPN sessions to external CEs
  int num_paths = 12;             // multi-hop MPLS paths
  int path_len = 3;               // hops per path
  std::uint64_t seed = 1;
};

// Builds a random connected network honouring `params`.
// Throws std::invalid_argument on infeasible parameters (e.g. more links
// requested than ports available).
Topology GenerateTopology(const TopologyParams& params);

}  // namespace sld::net
