// Parses vendor-style router configuration text back into a structured
// form.  This is the front half of the paper's offline "Location
// Extraction" component (Fig. 1): configs in, per-router location facts
// out.  The location dictionary (core/location) is built on top of the
// structures returned here.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/topology.h"

namespace sld::net {

// One layer-3 interface with its address.
struct ParsedInterface {
  std::string name;
  std::string ip;
  int prefix_len = 32;  // from the netmask (V1) or CIDR suffix (V2)
  bool loopback = false;
};

// One physical port / interface and, when the config records it, the
// link adjacency taken from its description line.
struct ParsedPort {
  std::string name;
  std::string peer_router;  // empty if no adjacency recorded
  std::string peer_if;
  int bundle_group = 0;  // V1: "ppp multilink group N"; 0 = none
};

// A multilink / LAG bundle with its member ports.
struct ParsedBundle {
  std::string name;
  int group = 0;  // V1 group number linking members to the bundle
  std::vector<std::string> members;
};

// A BGP neighbor; `vrf` is empty for iBGP (infrastructure) neighbors.
struct ParsedBgpNeighbor {
  std::string ip;
  std::string vrf;
};

// A named multi-hop path with router-name hops.
struct ParsedPath {
  std::string name;
  std::vector<std::string> hops;
};

// Everything location-relevant extracted from one router's config.
struct ParsedConfig {
  std::string hostname;
  Vendor vendor = Vendor::kV1;
  std::string loopback_ip;
  std::vector<std::string> controllers;  // e.g. "T1 0/0"
  std::vector<ParsedPort> ports;
  std::vector<ParsedInterface> interfaces;
  std::vector<ParsedBundle> bundles;
  std::vector<ParsedBgpNeighbor> bgp_neighbors;
  std::vector<ParsedPath> paths;
};

// Parses one router's configuration.  The vendor dialect is auto-detected
// ("hostname ..." => V1, "configure"/"system" block => V2).
// Throws std::runtime_error when no hostname can be found.
ParsedConfig ParseConfig(std::string_view text);

}  // namespace sld::net
