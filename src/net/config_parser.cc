#include "net/config_parser.h"

#include <stdexcept>

#include "common/strings.h"
#include "net/addr.h"

namespace sld::net {
namespace {

std::string Unquote(std::string_view s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    s = s.substr(1, s.size() - 2);
  }
  return std::string(s);
}

// Is this interface name a sub-interface of a previously declared port?
// V1 logical interfaces contain a '.' ("Serial0/0.10:0"); V1 physical
// interfaces do not.
bool IsV1Logical(std::string_view name) {
  return name.find('.') != std::string_view::npos;
}

ParsedConfig ParseV1(std::string_view text) {
  ParsedConfig cfg;
  cfg.vendor = Vendor::kV1;

  // Section state while scanning line by line.
  enum class Section { kNone, kInterface, kBgp, kPath };
  Section section = Section::kNone;
  std::string current_if;  // interface block we are inside
  bool current_is_port = false;
  std::string current_vrf;  // BGP address-family VRF context

  for (const std::string_view raw : SplitChar(text, '\n')) {
    const std::string_view line = Trim(raw);
    if (line.empty() || line == "!") continue;
    const auto words = SplitWhitespace(line);

    if (words[0] == "hostname" && words.size() >= 2) {
      cfg.hostname = std::string(words[1]);
      section = Section::kNone;
    } else if (words[0] == "controller" && words.size() >= 3) {
      cfg.controllers.push_back(std::string(words[1]) + " " +
                                std::string(words[2]));
      section = Section::kNone;
    } else if (words[0] == "interface" && words.size() >= 2) {
      current_if = std::string(words[1]);
      section = Section::kInterface;
      if (current_if.starts_with("Loopback")) {
        current_is_port = false;
      } else if (current_if.starts_with("Multilink")) {
        cfg.bundles.push_back({current_if, 0, {}});
        current_is_port = false;
      } else if (IsV1Logical(current_if)) {
        current_is_port = false;
      } else {
        cfg.ports.push_back({current_if, "", "", 0});
        current_is_port = true;
      }
    } else if (words[0] == "router" && words.size() >= 2 &&
               words[1] == "bgp") {
      section = Section::kBgp;
      current_vrf.clear();
    } else if (words[0] == "mpls" && words.size() >= 4) {
      cfg.paths.push_back({std::string(words[3]), {}});
      section = Section::kPath;
    } else if (section == Section::kInterface) {
      if (words[0] == "ip" && words.size() >= 4 && words[1] == "address") {
        if (current_if.starts_with("Loopback")) {
          cfg.loopback_ip = std::string(words[2]);
        } else {
          ParsedInterface intf;
          intf.name = current_if;
          intf.ip = std::string(words[2]);
          intf.prefix_len = MaskToPrefixLength(words[3]).value_or(32);
          cfg.interfaces.push_back(std::move(intf));
        }
      } else if (words[0] == "description" && words.size() >= 4 &&
                 words[1] == "to" && current_is_port) {
        cfg.ports.back().peer_router = std::string(words[2]);
        cfg.ports.back().peer_if = std::string(words[3]);
      } else if (words[0] == "ppp" && words.size() >= 4 &&
                 words[1] == "multilink" && words[2] == "group") {
        const auto group = ParseInt(words[3]);
        if (group) {
          if (current_is_port) {
            cfg.ports.back().bundle_group = static_cast<int>(*group);
          } else if (!cfg.bundles.empty() &&
                     cfg.bundles.back().name == current_if) {
            cfg.bundles.back().group = static_cast<int>(*group);
          }
        }
      }
    } else if (section == Section::kBgp) {
      if (words[0] == "address-family" && words.size() >= 4 &&
          words[2] == "vrf") {
        current_vrf = std::string(words[3]);
      } else if (words[0] == "exit-address-family") {
        current_vrf.clear();
      } else if (words[0] == "neighbor" && words.size() >= 2) {
        cfg.bgp_neighbors.push_back({std::string(words[1]), current_vrf});
      }
    } else if (section == Section::kPath) {
      if (words[0] == "hop" && words.size() >= 2) {
        cfg.paths.back().hops.push_back(std::string(words[1]));
      }
    }
  }

  // Attach bundle members recorded as "ppp multilink group N" on ports.
  for (const ParsedPort& port : cfg.ports) {
    if (port.bundle_group == 0) continue;
    for (ParsedBundle& bundle : cfg.bundles) {
      if (bundle.group == port.bundle_group) {
        bundle.members.push_back(port.name);
      }
    }
  }

  if (cfg.hostname.empty()) {
    throw std::runtime_error("V1 config without hostname");
  }
  return cfg;
}

ParsedConfig ParseV2(std::string_view text) {
  ParsedConfig cfg;
  cfg.vendor = Vendor::kV2;

  enum class Section { kNone, kSystem, kPort, kLag, kInterface, kBgpGroup,
                       kPath };
  Section section = Section::kNone;
  std::string current_if;
  std::string current_vrf;

  for (const std::string_view raw : SplitChar(text, '\n')) {
    const std::string_view line = Trim(raw);
    if (line.empty()) continue;
    const auto words = SplitWhitespace(line);

    if (words[0] == "exit") {
      // Blocks are shallow; returning to kNone after any exit is safe
      // because every recognized directive re-establishes its section.
      section = Section::kNone;
    } else if (words[0] == "system") {
      section = Section::kSystem;
    } else if (words[0] == "name" && section == Section::kSystem &&
               words.size() >= 2) {
      cfg.hostname = Unquote(words[1]);
    } else if (words[0] == "port" && section == Section::kLag &&
               words.size() >= 2) {
      if (!cfg.bundles.empty()) {
        cfg.bundles.back().members.push_back(std::string(words[1]));
      }
    } else if (words[0] == "port" && section == Section::kInterface &&
               words.size() >= 2) {
      // "port 1/1/1" inside an interface block: binds the logical
      // interface to its physical port — recorded via name match later.
    } else if (words[0] == "port" && words.size() >= 2) {
      cfg.ports.push_back({std::string(words[1]), "", "", 0});
      section = Section::kPort;
    } else if (words[0] == "description" && section == Section::kPort &&
               words.size() >= 2) {
      // description "to <router> <ifname>"
      const std::string body =
          Unquote(Trim(line.substr(line.find(' ') + 1)));
      const auto inner = SplitWhitespace(body);
      if (inner.size() >= 3 && inner[0] == "to" && !cfg.ports.empty()) {
        cfg.ports.back().peer_router = std::string(inner[1]);
        cfg.ports.back().peer_if = std::string(inner[2]);
      }
    } else if (words[0] == "lag" && words.size() >= 2) {
      cfg.bundles.push_back({"lag-" + std::string(words[1]), 0, {}});
      section = Section::kLag;
    } else if (words[0] == "interface" && words.size() >= 2) {
      current_if = Unquote(words[1]);
      section = Section::kInterface;
    } else if (words[0] == "address" && section == Section::kInterface &&
               words.size() >= 2) {
      const std::string_view addr = words[1];
      const std::size_t slash = addr.find('/');
      const std::string ip(addr.substr(0, slash));
      if (current_if == "system") {
        cfg.loopback_ip = ip;
      } else {
        ParsedInterface intf;
        intf.name = current_if;
        intf.ip = ip;
        if (slash != std::string_view::npos) {
          intf.prefix_len = static_cast<int>(
              ParseInt(addr.substr(slash + 1)).value_or(32));
        }
        cfg.interfaces.push_back(std::move(intf));
      }
    } else if (words[0] == "group" && words.size() >= 2) {
      const std::string group_name = Unquote(words[1]);
      current_vrf = group_name.starts_with("vpn-") ? group_name.substr(4)
                                                   : std::string();
      section = Section::kBgpGroup;
    } else if (words[0] == "neighbor" && section == Section::kBgpGroup &&
               words.size() >= 2) {
      cfg.bgp_neighbors.push_back({std::string(words[1]), current_vrf});
    } else if (words[0] == "mpls" && words.size() >= 3 &&
               words[1] == "path") {
      cfg.paths.push_back({Unquote(words[2]), {}});
      section = Section::kPath;
    } else if (words[0] == "hop" && section == Section::kPath &&
               words.size() >= 3 && !cfg.paths.empty()) {
      cfg.paths.back().hops.push_back(std::string(words[2]));
    }
  }

  if (cfg.hostname.empty()) {
    throw std::runtime_error("V2 config without system name");
  }
  return cfg;
}

}  // namespace

ParsedConfig ParseConfig(std::string_view text) {
  for (const std::string_view raw : SplitChar(text, '\n')) {
    const std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (line.starts_with("hostname ")) return ParseV1(text);
    if (line == "configure") return ParseV2(text);
  }
  throw std::runtime_error("unrecognized config dialect");
}

}  // namespace sld::net
