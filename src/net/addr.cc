#include "net/addr.h"

#include <cstdio>

#include "common/strings.h"

namespace sld::net {

std::optional<Ipv4> Ipv4::Parse(std::string_view text) noexcept {
  if (!LooksLikeIpv4(text)) return std::nullopt;
  std::uint32_t value = 0;
  for (const std::string_view part : SplitChar(text, '.')) {
    value = (value << 8) | static_cast<std::uint32_t>(*ParseInt(part));
  }
  return Ipv4(value);
}

std::string Ipv4::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 255,
                (value_ >> 16) & 255, (value_ >> 8) & 255, value_ & 255);
  return buf;
}

namespace {

constexpr std::uint32_t MaskBits(int length) noexcept {
  if (length <= 0) return 0;
  if (length >= 32) return 0xffffffffu;
  return ~((1u << (32 - length)) - 1);
}

}  // namespace

Ipv4Prefix::Ipv4Prefix(Ipv4 addr, int length) noexcept
    : network_(addr.value() & MaskBits(length)),
      length_(length < 0 ? 0 : (length > 32 ? 32 : length)) {}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4::Parse(text.substr(0, slash));
  const auto length = ParseInt(text.substr(slash + 1));
  if (!addr || !length || *length > 32) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<int>(*length));
}

std::optional<Ipv4Prefix> Ipv4Prefix::FromMask(
    std::string_view addr, std::string_view mask) noexcept {
  const auto parsed = Ipv4::Parse(addr);
  const auto length = MaskToPrefixLength(mask);
  if (!parsed || !length) return std::nullopt;
  return Ipv4Prefix(*parsed, *length);
}

bool Ipv4Prefix::Contains(Ipv4 addr) const noexcept {
  return (addr.value() & MaskBits(length_)) == network_.value();
}

std::string Ipv4Prefix::ToString() const {
  return network_.ToString() + "/" + std::to_string(length_);
}

std::optional<int> MaskToPrefixLength(std::string_view mask) noexcept {
  const auto parsed = Ipv4::Parse(mask);
  if (!parsed) return std::nullopt;
  const std::uint32_t bits = parsed->value();
  // Must be ones followed by zeros.
  int length = 0;
  while (length < 32 && (bits & (1u << (31 - length)))) ++length;
  if (bits != MaskBits(length)) return std::nullopt;
  return length;
}

}  // namespace sld::net
