// IPv4 addresses and prefixes.
//
// The location dictionary keys layer-3 addresses, and the extractor must
// decide whether an address seen in free text belongs to the network.  An
// exact interface-address match is the common case; prefix containment
// handles addresses inside a configured link subnet that are not
// themselves configured locally (e.g. the far end of a /30 when only one
// side's config is available).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sld::net {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}

  // Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4> Parse(std::string_view text) noexcept;

  std::string ToString() const;
  constexpr std::uint32_t value() const noexcept { return value_; }

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_ = 0;
};

// An address block in CIDR form.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  // Canonicalizes: host bits of `addr` are cleared.
  Ipv4Prefix(Ipv4 addr, int length) noexcept;

  // Parses "10.0.0.0/30"; nullopt on malformed input or length > 32.
  static std::optional<Ipv4Prefix> Parse(std::string_view text) noexcept;
  // Builds from an address and a dotted-quad netmask
  // ("10.0.0.1", "255.255.255.252"); nullopt for non-contiguous masks.
  static std::optional<Ipv4Prefix> FromMask(std::string_view addr,
                                            std::string_view mask) noexcept;

  constexpr Ipv4 network() const noexcept { return network_; }
  constexpr int length() const noexcept { return length_; }

  bool Contains(Ipv4 addr) const noexcept;
  std::string ToString() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&,
                                    const Ipv4Prefix&) = default;

 private:
  Ipv4 network_;
  int length_ = 0;
};

// Prefix length of a contiguous dotted-quad netmask, or nullopt
// ("255.255.255.252" -> 30).
std::optional<int> MaskToPrefixLength(std::string_view mask) noexcept;

}  // namespace sld::net
