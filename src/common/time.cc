#include "common/time.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/simd.h"

namespace sld {
namespace {

bool ParseFixedInt(std::string_view s, std::size_t pos, std::size_t len,
                   int& out) noexcept {
  if (pos + len > s.size()) return false;
  int value = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const char c = s[pos + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  out = value;
  return true;
}

}  // namespace

bool IsLeapYear(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) noexcept {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

std::int64_t DaysFromCivil(int y, int m, int d) noexcept {
  // Howard Hinnant's algorithm, shifting the year so March is month 0.
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void CivilFromDays(std::int64_t z, int& year, int& month, int& day) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  year = static_cast<int>(y + (month <= 2));
}

TimeMs ToTimeMs(const CivilTime& ct) noexcept {
  const std::int64_t days = DaysFromCivil(ct.year, ct.month, ct.day);
  return days * kMsPerDay + ct.hour * kMsPerHour + ct.minute * kMsPerMinute +
         ct.second * kMsPerSecond + ct.millisecond;
}

CivilTime ToCivil(TimeMs t) noexcept {
  std::int64_t days = t / kMsPerDay;
  std::int64_t rem = t % kMsPerDay;
  if (rem < 0) {
    rem += kMsPerDay;
    --days;
  }
  CivilTime ct;
  CivilFromDays(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(rem / kMsPerHour);
  rem %= kMsPerHour;
  ct.minute = static_cast<int>(rem / kMsPerMinute);
  rem %= kMsPerMinute;
  ct.second = static_cast<int>(rem / kMsPerSecond);
  ct.millisecond = static_cast<int>(rem % kMsPerSecond);
  return ct;
}

std::string FormatTimestamp(TimeMs t) {
  const CivilTime ct = ToCivil(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

std::string FormatTimestampMs(TimeMs t) {
  const CivilTime ct = ToCivil(t);
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second,
                ct.millisecond);
  return buf;
}

std::optional<TimeMs> ParseTimestamp(std::string_view text) noexcept {
  // "YYYY-MM-DD HH:MM:SS" is exactly 19 chars; ".mmm" is optional.
  if (text.size() != 19 && text.size() != 23) return std::nullopt;
  CivilTime ct;
  if (!ParseFixedInt(text, 0, 4, ct.year) || text[4] != '-' ||
      !ParseFixedInt(text, 5, 2, ct.month) || text[7] != '-' ||
      !ParseFixedInt(text, 8, 2, ct.day) || text[10] != ' ' ||
      !ParseFixedInt(text, 11, 2, ct.hour) || text[13] != ':' ||
      !ParseFixedInt(text, 14, 2, ct.minute) || text[16] != ':' ||
      !ParseFixedInt(text, 17, 2, ct.second)) {
    return std::nullopt;
  }
  if (text.size() == 23) {
    if (text[19] != '.' || !ParseFixedInt(text, 20, 3, ct.millisecond)) {
      return std::nullopt;
    }
  }
  if (ct.month < 1 || ct.month > 12) return std::nullopt;
  if (ct.day < 1 || ct.day > DaysInMonth(ct.year, ct.month)) {
    return std::nullopt;
  }
  if (ct.hour > 23 || ct.minute > 59 || ct.second > 59) return std::nullopt;
  return ToTimeMs(ct);
}

std::optional<TimeMs> ParseTimestampFast(std::string_view text,
                                         TimestampMemo& memo) noexcept {
  if (text.size() != 19 && text.size() != 23) return std::nullopt;
  // text.size() >= 19 and memo.date is padded to 16 bytes, so both sides
  // satisfy EqualDate10's 16-readable-bytes contract.
  TimeMs base;
  if (memo.valid && simd::EqualDate10(text.data(), memo.date.data())) {
    base = memo.day_base;
  } else {
    int year, month, day;
    if (!ParseFixedInt(text, 0, 4, year) || text[4] != '-' ||
        !ParseFixedInt(text, 5, 2, month) || text[7] != '-' ||
        !ParseFixedInt(text, 8, 2, day)) {
      return std::nullopt;
    }
    if (month < 1 || month > 12) return std::nullopt;
    if (day < 1 || day > DaysInMonth(year, month)) return std::nullopt;
    base = DaysFromCivil(year, month, day) * kMsPerDay;
    std::memcpy(memo.date.data(), text.data(), TimestampMemo::kDateLen);
    memo.day_base = base;
    memo.valid = true;
  }
  if (text[10] != ' ') return std::nullopt;
  const int clock = simd::ParseClock8(text.data() + 11);
  if (clock < 0) return std::nullopt;
  const int hour = (clock >> 16) & 0xFF;
  const int minute = (clock >> 8) & 0xFF;
  const int second = clock & 0xFF;
  int millisecond = 0;
  if (text.size() == 23 &&
      (text[19] != '.' || !ParseFixedInt(text, 20, 3, millisecond))) {
    return std::nullopt;
  }
  if (hour > 23 || minute > 59 || second > 59) return std::nullopt;
  return base + hour * kMsPerHour + minute * kMsPerMinute +
         second * kMsPerSecond + millisecond;
}

}  // namespace sld
