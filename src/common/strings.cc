#include "common/strings.h"

#include <cctype>

#include "common/simd.h"

namespace sld {
namespace {

bool IsSpace(char c) noexcept { return c == ' ' || c == '\t'; }

}  // namespace

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  SplitWhitespace(text, &out);
  return out;
}

void SplitWhitespace(std::string_view text,
                     std::vector<std::string_view>* out) {
  simd::SplitWhitespace(text, out);
}

std::vector<std::string_view>& TlsTokenScratch() {
  thread_local std::vector<std::string_view> scratch;
  return scratch;
}

std::vector<std::string_view> SplitChar(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

namespace {
template <typename Parts>
std::string JoinImpl(const Parts& parts, std::string_view sep) {
  std::string out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string_view Trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (IsSpace(text[begin]) || text[begin] == '\r' ||
                         text[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (IsSpace(text[end - 1]) || text[end - 1] == '\r' ||
                         text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string_view TrimLeft(std::string_view text) noexcept {
  std::size_t begin = 0;
  while (begin < text.size() &&
         (IsSpace(text[begin]) || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  return text.substr(begin);
}

std::optional<std::int64_t> ParseInt(std::string_view text) noexcept {
  if (text.empty() || text.size() > 18) return std::nullopt;
  std::int64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

bool IsAllDigits(std::string_view text) noexcept {
  return simd::IsAllDigits(text);
}

bool LooksLikeIpv4(std::string_view text) noexcept {
  int octets = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      const std::string_view part = text.substr(start, i - start);
      if (part.empty() || part.size() > 3 || !IsAllDigits(part)) return false;
      const auto value = ParseInt(part);
      if (!value || *value > 255) return false;
      ++octets;
      start = i + 1;
    }
  }
  return octets == 4;
}

bool LooksLikeIfPosition(std::string_view text) noexcept {
  bool saw_slash = false;
  bool in_number = false;
  bool any_digit = false;
  for (const char c : text) {
    if (c >= '0' && c <= '9') {
      in_number = true;
      any_digit = true;
    } else if (c == '/' || c == '.' || c == ':') {
      if (!in_number) return false;  // separators must follow a number
      saw_slash = saw_slash || c == '/';
      in_number = false;
    } else {
      return false;
    }
  }
  return any_digit && in_number && saw_slash;  // must end on a digit
}

}  // namespace sld
