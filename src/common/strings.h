// Small string helpers shared across the library.
//
// Syslog processing is dominated by tokenizing and re-assembling short ASCII
// strings; these helpers keep that code allocation-light (string_view in,
// string out only where ownership is required).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sld {

// Splits on runs of whitespace (space/tab); no empty tokens are produced.
// The returned views alias `text` and are invalidated with it.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

// Scratch form: clears `out` and refills it with the split of `text`.
// Reusing one vector across calls keeps steady-state tokenization
// allocation-free once its capacity has warmed up.
void SplitWhitespace(std::string_view text,
                     std::vector<std::string_view>* out);

// Per-thread scratch vector for SplitWhitespace on hot paths that have no
// natural place to carry one (extractor/learner/template lookups).  The
// views it holds alias the caller's text and are clobbered by the next
// use on the same thread — consume the tokens before calling anything
// that tokenizes again.
std::vector<std::string_view>& TlsTokenScratch();

// Splits on every occurrence of `delim`; empty fields are preserved
// ("a||b" -> {"a", "", "b"}).  The views alias `text`.
std::vector<std::string_view> SplitChar(std::string_view text, char delim);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing whitespace (space/tab/CR/LF).
std::string_view Trim(std::string_view text) noexcept;

// Removes leading whitespace only (space/tab/CR/LF).  For text that is
// already right-trimmed, this is the cheap half of Trim.
std::string_view TrimLeft(std::string_view text) noexcept;

// Parses a non-negative decimal integer occupying the whole view.
std::optional<std::int64_t> ParseInt(std::string_view text) noexcept;

// True when every character of `text` is a decimal digit (and non-empty).
bool IsAllDigits(std::string_view text) noexcept;

// True when `text` is a syntactically valid dotted-quad IPv4 address.
bool LooksLikeIpv4(std::string_view text) noexcept;

// True when `text` looks like an interface position such as "1/0", "2/0/0",
// "1/0/0:1", or "13/0.10/20:0" — digits joined by '/', '.', ':' with at
// least one '/'.
bool LooksLikeIfPosition(std::string_view text) noexcept;

}  // namespace sld
