// Deterministic pseudo-random source for the network simulator.
//
// Every stochastic decision in the workload generator flows through one Rng
// so a (topology seed, workload seed) pair reproduces a dataset bit-for-bit —
// a property the tests and the benchmark harnesses rely on.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace sld {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponentially distributed value with the given mean (> 0).
  double ExponentialMean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Poisson-distributed count with the given mean (>= 0).
  std::int64_t Poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  // Normal variate.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Uniformly chosen index into a container of the given size (> 0).
  std::size_t Index(std::size_t size) {
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(size) - 1));
  }

  // Uniformly chosen element.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Index(v.size())];
  }

  // Weighted choice: returns an index distributed according to `weights`.
  std::size_t Weighted(std::span<const double> weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    double x = UniformReal() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  // Bulk-fills `out` with uniform 64-bit words.  One engine draw seeds a
  // splitmix64 counter expansion, so each word is a pure function of
  // (key, index) — the loop has no cross-iteration dependency and
  // auto-vectorizes, which is what lets slgen's fault-knob decisions keep
  // up with a multi-megabit render loop.  Exactly one engine_() advance
  // per call regardless of out.size(), and the scalar draw methods above
  // are untouched, so existing (seed -> dataset) byte sequences are
  // preserved.
  void FillUniform64(std::span<std::uint64_t> out) {
    const std::uint64_t key = engine_();
    for (std::size_t i = 0; i < out.size(); ++i) {
      std::uint64_t z = key + (i + 1) * 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      out[i] = z ^ (z >> 31);
    }
  }

  // Derives an independent child generator; used to give each scenario its
  // own stream so adding one scenario does not perturb the others.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sld
