// A small reusable fork-join pool for the offline miners.
//
// The offline learning phases (template sharding, Syslog+ augmentation,
// per-period rule mining, the α/β grid) are all "N independent tasks,
// results gathered in index order".  ParallelFor is built for exactly
// that shape and nothing more:
//
//  - `fn(index, worker)` is called exactly once for every index in
//    [0, n); each task writes only its own per-index slot, so the result
//    vector is deterministic no matter how the scheduler interleaves
//    workers.
//  - `worker` is a dense id in [0, thread_count()) for per-worker
//    scratch (the caller participates as worker 0), never for output.
//  - Indices are claimed in contiguous chunks off a shared atomic
//    cursor, so a million tiny tasks cost ~thousands of RMWs, not a
//    million, while uneven coarse tasks (template shards of very
//    different sizes) still balance.
//
// A pool constructed with `threads <= 1` spawns nothing and runs every
// task inline on the caller — the serial and parallel code paths are the
// same code, which is what lets the learner equivalence tests demand
// bit-identical output at any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sld {

class ThreadPool {
 public:
  using Task = std::function<void(std::size_t index, std::size_t worker)>;

  // `threads` counts the caller: a pool of 4 spawns 3 helpers.
  // `threads <= 0` means one thread per hardware core.
  explicit ThreadPool(int threads) {
    if (threads <= 0) threads = static_cast<int>(HardwareThreads());
    const int helpers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(static_cast<std::size_t>(helpers));
    for (int w = 0; w < helpers; ++w) {
      workers_.emplace_back(
          [this, w] { WorkerLoop(static_cast<std::size_t>(w) + 1); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  // Workers available to ParallelFor, caller included.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  static unsigned HardwareThreads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

  // Runs fn(i, worker) exactly once for every i in [0, n); returns when
  // all calls have finished.  `chunk` is the number of consecutive
  // indices a worker claims at a time (0 = pick automatically).  The
  // first exception thrown by a task is rethrown here after the join.
  void ParallelFor(std::size_t n, const Task& fn, std::size_t chunk = 0) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i, 0);
      return;
    }
    if (chunk == 0) {
      // ~8 claims per worker amortizes the cursor RMW without starving
      // load balance when task costs are skewed.
      chunk = n / (thread_count() * 8);
      if (chunk == 0) chunk = 1;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      chunk_ = chunk;
      total_ = n;
      next_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      ++generation_;
    }
    wake_.notify_all();
    Drain(fn, /*worker=*/0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] {
      return next_.load(std::memory_order_relaxed) >= total_ && active_ == 0;
    });
    job_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  void WorkerLoop(std::size_t worker) {
    std::uint64_t seen = 0;
    for (;;) {
      const Task* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return stop_ || (generation_ != seen && job_ != nullptr);
        });
        if (stop_) return;
        seen = generation_;
        job = job_;
        ++active_;
      }
      Drain(*job, worker);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
      }
      done_.notify_all();
    }
  }

  void Drain(const Task& fn, std::size_t worker) {
    for (;;) {
      const std::size_t begin =
          next_.fetch_add(chunk_, std::memory_order_relaxed);
      if (begin >= total_) return;
      const std::size_t end =
          begin + chunk_ < total_ ? begin + chunk_ : total_;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i, worker);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (error_ == nullptr) error_ = std::current_exception();
        }
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const Task* job_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t total_ = 0;
  std::size_t chunk_ = 1;
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_ = nullptr;
  bool stop_ = false;
};

// Pool-optional fan-out: a null pool runs the loop inline on the caller,
// so call sites keep a single code path for serial and parallel modes.
inline void ParallelFor(ThreadPool* pool, std::size_t n,
                        const ThreadPool::Task& fn, std::size_t chunk = 0) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  pool->ParallelFor(n, fn, chunk);
}

}  // namespace sld
