// Runtime-dispatched SIMD kernels for the byte-level hot loops.
//
// Each kernel ships in up to three variants — scalar (the always-available
// oracle, compiled with the project's baseline flags), SSE2 and AVX2 — and
// every variant is bit-identical to the scalar one for every input: same
// return values, same token spans, same 64-bit hash.  Dispatch is resolved
// once at startup from CPUID (`__builtin_cpu_supports`) into a function
// pointer table; `SLD_SIMD=scalar|sse2|avx2` in the environment (or
// `--simd` on sldigest) pins a lower level, and requests above what the
// host supports clamp down with a warning.  Callers above `src/common/`
// never see any of this: strings.cc, hash.h, time.cc, ingest.cc and
// record.cc route through the wrappers below and keep their signatures.
//
// Contracts that differ from the scalar code they replace:
//   * EqualDate10 requires BOTH arguments to have 16 readable bytes (it is
//     a single 16-byte vector compare masked to the low 10).  The two call
//     sites guarantee this: timestamp text is at least 19 bytes and
//     TimestampMemo::date is padded to 16.
//   * ParseClock8 requires 8 readable bytes.
// Everything else reads only the span it is given (full-width chunks, then
// a scalar or staged tail — never past the end).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace sld::simd {

// Dispatch levels, ordered by capability.  The numeric values are stable —
// they are exported as the `simd_level` metrics gauge.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

// One resolved kernel set.  All three tables exist on x86; non-x86 builds
// alias everything to the scalar table.
struct KernelTable {
  // Index of the first `byte` at or after `from`, or `n` when absent.
  std::size_t (*find_byte)(const char* data, std::size_t n, std::size_t from,
                           char byte) noexcept;
  // Clears `out` and refills it with the space/tab-separated tokens of
  // `text` — identical spans to sld::SplitWhitespace.
  void (*split_whitespace)(std::string_view text,
                           std::vector<std::string_view>* out);
  // Same value as sld::HashBytesScalar for every (bytes, seed).
  std::uint64_t (*hash_bytes)(const char* data, std::size_t n,
                              std::uint64_t seed) noexcept;
  // True when all `n` bytes are decimal digits.  n == 0 returns true; the
  // IsAllDigits wrapper below adds the non-empty requirement.
  bool (*validate_digits)(const char* data, std::size_t n) noexcept;
  // memcmp(a, b, 10) == 0, with 16 readable bytes required behind both
  // pointers at every level (see header comment).
  bool (*equal_date10)(const char* a, const char* b) noexcept;
  // Parses "HH:MM:SS" at `p` (8 readable bytes): returns
  // (hour << 16) | (minute << 8) | second on digit/colon shape match, -1
  // otherwise.  No range checks — callers keep their own.
  int (*parse_clock8)(const char* p) noexcept;
};

namespace detail {
// Constant-initialized to the scalar table so kernel calls are safe during
// static initialization; a dynamic initializer in simd.cc then applies
// CPUID detection and the SLD_SIMD override.
extern std::atomic<const KernelTable*> g_active;
}  // namespace detail

// The table for a given level (scalar table when the level is not compiled
// in on this architecture).
const KernelTable& TableFor(Level level) noexcept;

// Highest level this host supports.
Level MaxSupported() noexcept;
inline bool Supported(Level level) noexcept { return level <= MaxSupported(); }

// Currently active dispatch level.
Level ActiveLevel() noexcept;

// Activates `want`, clamped to MaxSupported(); returns what was activated.
// Intended for startup (and tests); concurrent readers only ever see a
// valid table, but flipping mid-flight mixes levels across calls.
Level SetLevel(Level want) noexcept;

// "scalar" | "sse2" | "avx2" (exact match) -> level; anything else nullopt.
std::optional<Level> LevelFromName(std::string_view name) noexcept;

// Inverse of LevelFromName; returns a NUL-terminated literal.
const char* LevelName(Level level) noexcept;

inline const KernelTable& Active() noexcept {
  return *detail::g_active.load(std::memory_order_relaxed);
}

// ---- Dispatched wrappers -------------------------------------------------

inline std::size_t FindByteFrom(std::string_view hay, std::size_t from,
                                char byte) noexcept {
  return Active().find_byte(hay.data(), hay.size(), from, byte);
}

inline std::size_t FindNewlineFrom(std::string_view hay,
                                   std::size_t from) noexcept {
  return FindByteFrom(hay, from, '\n');
}

inline std::size_t FindNewline(std::string_view hay) noexcept {
  return FindNewlineFrom(hay, 0);
}

inline void SplitWhitespace(std::string_view text,
                            std::vector<std::string_view>* out) {
  Active().split_whitespace(text, out);
}

inline std::uint64_t HashBytes(std::string_view bytes,
                               std::uint64_t seed) noexcept {
  return Active().hash_bytes(bytes.data(), bytes.size(), seed);
}

inline bool ValidateDigits(const char* data, std::size_t n) noexcept {
  return Active().validate_digits(data, n);
}

inline bool IsAllDigits(std::string_view text) noexcept {
  return !text.empty() && ValidateDigits(text.data(), text.size());
}

inline bool EqualDate10(const char* a, const char* b) noexcept {
  return Active().equal_date10(a, b);
}

inline int ParseClock8(const char* p) noexcept {
  return Active().parse_clock8(p);
}

}  // namespace sld::simd
