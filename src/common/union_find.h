// Disjoint-set (union-find) with path compression and union by size.
//
// The online grouper merges messages into events with three independent
// passes (temporal, rule-based, cross-router); expressing every merge
// through one union-find makes the final partition independent of pass
// order — the property §4.2.3 of the paper asserts and our tests check.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace sld {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  // Appends a fresh singleton element and returns its index (used by
  // streaming consumers that discover elements over time).
  std::size_t Add() {
    parent_.push_back(parent_.size());
    size_.push_back(1);
    return parent_.size() - 1;
  }

  // Representative of x's set.
  std::size_t Find(std::size_t x) noexcept {
    std::size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  // Merges the sets of a and b; returns the new representative.
  std::size_t Union(std::size_t a, std::size_t b) noexcept {
    std::size_t ra = Find(a);
    std::size_t rb = Find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  bool Connected(std::size_t a, std::size_t b) noexcept {
    return Find(a) == Find(b);
  }

  // Size of the set containing x.
  std::size_t SetSize(std::size_t x) noexcept { return size_[Find(x)]; }

  std::size_t element_count() const noexcept { return parent_.size(); }

  // Raw forest state, for checkpointing.  `Rebuild` restores a forest
  // previously captured via parents()/sizes(); the vectors must be the
  // same length.
  const std::vector<std::size_t>& parents() const noexcept { return parent_; }
  const std::vector<std::size_t>& sizes() const noexcept { return size_; }
  void Rebuild(std::vector<std::size_t> parents,
               std::vector<std::size_t> sizes) {
    parent_ = std::move(parents);
    size_ = std::move(sizes);
  }

  // Number of disjoint sets.
  std::size_t SetCount() noexcept {
    std::size_t count = 0;
    for (std::size_t i = 0; i < parent_.size(); ++i) {
      if (Find(i) == i) ++count;
    }
    return count;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace sld
