// Civil-time utilities for syslog timestamps.
//
// Router syslog messages carry wall-clock timestamps such as
// "2010-01-10 00:00:15".  The whole pipeline (simulator, miners, groupers)
// works on a single integer time axis: milliseconds since the Unix epoch,
// UTC.  Conversions between that axis and the textual form are implemented
// here from first principles (Howard Hinnant's days-from-civil algorithm)
// so the library has no dependency on the host timezone database.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sld {

// Milliseconds since 1970-01-01 00:00:00 UTC.
using TimeMs = std::int64_t;

inline constexpr TimeMs kMsPerSecond = 1000;
inline constexpr TimeMs kMsPerMinute = 60 * kMsPerSecond;
inline constexpr TimeMs kMsPerHour = 60 * kMsPerMinute;
inline constexpr TimeMs kMsPerDay = 24 * kMsPerHour;

// A broken-down civil (proleptic Gregorian, UTC) time.
struct CivilTime {
  int year = 1970;
  int month = 1;   // [1, 12]
  int day = 1;     // [1, 31]
  int hour = 0;    // [0, 23]
  int minute = 0;  // [0, 59]
  int second = 0;  // [0, 59]
  int millisecond = 0;

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

// Days since the epoch for a civil date (negative before 1970).
std::int64_t DaysFromCivil(int year, int month, int day) noexcept;

// Inverse of DaysFromCivil.
void CivilFromDays(std::int64_t days, int& year, int& month, int& day) noexcept;

// Converts a civil time to the millisecond axis.
TimeMs ToTimeMs(const CivilTime& ct) noexcept;

// Converts a millisecond timestamp back to civil time.
CivilTime ToCivil(TimeMs t) noexcept;

// Formats as "YYYY-MM-DD HH:MM:SS" (syslog style; milliseconds dropped).
std::string FormatTimestamp(TimeMs t);

// Formats as "YYYY-MM-DD HH:MM:SS.mmm".
std::string FormatTimestampMs(TimeMs t);

// Parses "YYYY-MM-DD HH:MM:SS" with an optional ".mmm" suffix.
// Returns nullopt on any syntactic or range violation.
std::optional<TimeMs> ParseTimestamp(std::string_view text) noexcept;

// Memo for ParseTimestampFast: caches the last successfully validated
// "YYYY-MM-DD" prefix and its midnight on the millisecond axis.  Only
// validated dates enter the memo, so a 10-byte prefix match is proof the
// date part is well-formed and in range.  The array is padded to 16 bytes
// (only the first kDateLen are meaningful, the rest stay zero) so the
// prefix check can be one 16-byte vector compare — see simd::EqualDate10.
struct TimestampMemo {
  static constexpr std::size_t kDateLen = 10;
  std::array<char, 16> date{};
  TimeMs day_base = 0;
  bool valid = false;
};

// ParseTimestamp with a cached calendar date: when `text` carries the
// same "YYYY-MM-DD" prefix as the memo, only the "HH:MM:SS[.mmm]" tail
// is parsed (digits-only; no civil-date math).  Syslog timestamps are
// near-monotonic, so in archive scans this hits on all but ~1 line per
// day.  Accepts and rejects exactly the same inputs as ParseTimestamp
// and returns the same value for every accepted input, regardless of
// the memo's prior state.
std::optional<TimeMs> ParseTimestampFast(std::string_view text,
                                         TimestampMemo& memo) noexcept;

// True when the given year is a Gregorian leap year.
bool IsLeapYear(int year) noexcept;

// Number of days in a (year, month) pair; month in [1, 12].
int DaysInMonth(int year, int month) noexcept;

}  // namespace sld
