// String interning: maps repeated strings (router names, template tokens,
// location names) to dense integer ids.
//
// The miners treat messages as vectors of small integers; interning once at
// ingest keeps the hot loops free of string hashing.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sld {

class StringInterner {
 public:
  using Id = std::uint32_t;

  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  // Returns the id for `s`, inserting it on first sight.
  Id Intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    storage_.emplace_back(s);
    const Id id = static_cast<Id>(storage_.size() - 1);
    index_.emplace(storage_.back(), id);
    return id;
  }

  // Returns the id for `s` if already interned.
  std::optional<Id> Lookup(std::string_view s) const {
    const auto it = index_.find(s);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  // The string for a previously returned id. The view remains valid for the
  // lifetime of the interner (std::deque never relocates elements).
  std::string_view Get(Id id) const noexcept { return storage_[id]; }

  std::size_t size() const noexcept { return storage_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, Id, Hash, Eq> index_;
};

}  // namespace sld
