#include "common/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"

#if defined(__x86_64__) || defined(__i386__)
#define SLD_SIMD_X86 1
#include <immintrin.h>
#else
#define SLD_SIMD_X86 0
#endif

namespace sld::simd {
namespace {

// ---- Scalar oracles ------------------------------------------------------
//
// These are the exact loops the kernels replace (strings.cc / hash.h /
// time.cc); every vector variant below must agree with them byte for byte.

std::size_t FindByteScalar(const char* data, std::size_t n, std::size_t from,
                           char byte) noexcept {
  for (std::size_t i = from; i < n; ++i) {
    if (data[i] == byte) return i;
  }
  return n;
}

bool IsWs(char c) noexcept { return c == ' ' || c == '\t'; }

void SplitWhitespaceScalar(std::string_view text,
                           std::vector<std::string_view>* out) {
  out->clear();
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsWs(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !IsWs(text[i])) ++i;
    if (i > start) out->push_back(text.substr(start, i - start));
  }
}

std::uint64_t HashBytesScalarKernel(const char* data, std::size_t n,
                                    std::uint64_t seed) noexcept {
  return HashBytesScalar(std::string_view(data, n), seed);
}

bool ValidateDigitsScalar(const char* data, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] < '0' || data[i] > '9') return false;
  }
  return true;
}

bool EqualDate10Scalar(const char* a, const char* b) noexcept {
  return std::memcmp(a, b, 10) == 0;
}

int ParseClock8Scalar(const char* p) noexcept {
  const auto digit = [](char c) noexcept { return c >= '0' && c <= '9'; };
  if (!digit(p[0]) || !digit(p[1]) || p[2] != ':' || !digit(p[3]) ||
      !digit(p[4]) || p[5] != ':' || !digit(p[6]) || !digit(p[7])) {
    return -1;
  }
  const int hour = (p[0] - '0') * 10 + (p[1] - '0');
  const int minute = (p[3] - '0') * 10 + (p[4] - '0');
  const int second = (p[6] - '0') * 10 + (p[7] - '0');
  return (hour << 16) | (minute << 8) | second;
}

constexpr KernelTable kScalarTable = {
    FindByteScalar,      SplitWhitespaceScalar, HashBytesScalarKernel,
    ValidateDigitsScalar, EqualDate10Scalar,    ParseClock8Scalar,
};

#if SLD_SIMD_X86

// ---- Shared SIMD helpers -------------------------------------------------

// Wider-stride version of the scalar hash: the multiply-xorshift combine
// chain is serially dependent, so the win is issuing four 8-byte loads per
// iteration (out-of-order cores overlap them with the chain), not vector
// arithmetic.  Performing the identical per-word steps in the identical
// order keeps the value bit-equal to the scalar oracle for every input.
std::uint64_t HashBytesWide(const char* data, std::size_t n,
                            std::uint64_t seed) noexcept {
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(n) * kHashMul);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, data + i, 8);
    std::memcpy(&w1, data + i + 8, 8);
    std::memcpy(&w2, data + i + 16, 8);
    std::memcpy(&w3, data + i + 24, 8);
    h = (h ^ w0) * kHashMul;
    h ^= h >> 29;
    h = (h ^ w1) * kHashMul;
    h ^= h >> 29;
    h = (h ^ w2) * kHashMul;
    h ^= h >> 29;
    h = (h ^ w3) * kHashMul;
    h ^= h >> 29;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * kHashMul;
    h ^= h >> 29;
  }
  if (i < n) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, n - i);
    h = (h ^ w) * kHashMul;
    h ^= h >> 29;
  }
  return h;
}

// Branch-reduced clock parse shared by the SSE2/AVX2 tables: eight bytes
// is below vector break-even, but folding the eight shape checks into one
// predicate removes seven hard-to-predict branches from the per-line path.
int ParseClock8Swar(const char* p) noexcept {
  const unsigned c0 = static_cast<unsigned char>(p[0]) - '0';
  const unsigned c1 = static_cast<unsigned char>(p[1]) - '0';
  const unsigned c3 = static_cast<unsigned char>(p[3]) - '0';
  const unsigned c4 = static_cast<unsigned char>(p[4]) - '0';
  const unsigned c6 = static_cast<unsigned char>(p[6]) - '0';
  const unsigned c7 = static_cast<unsigned char>(p[7]) - '0';
  const bool bad = (c0 > 9) | (c1 > 9) | (c3 > 9) | (c4 > 9) | (c6 > 9) |
                   (c7 > 9) | (p[2] != ':') | (p[5] != ':');
  if (bad) return -1;
  return static_cast<int>(((c0 * 10 + c1) << 16) | ((c3 * 10 + c4) << 8) |
                          (c6 * 10 + c7));
}

// Single 16-byte compare masked to the low 10 lanes.  SSE2 is baseline on
// x86-64, so this serves both the SSE2 and AVX2 tables.  Requires 16
// readable bytes behind both pointers (see simd.h).
bool EqualDate10Sse2(const char* a, const char* b) noexcept {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const unsigned eq =
      static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
  return (eq & 0x3FFu) == 0x3FFu;
}

// Token-emission driver shared by the chunked tokenizers.  `ws` has bit i
// set when byte base+i is space/tab; bits at or above `len` are ignored.
// Walking set bits with ctz reproduces the scalar state machine exactly:
// `in_token`/`start` carry across chunks, so tokens straddling chunk
// boundaries come out as single spans.
struct SplitState {
  bool in_token = false;
  std::size_t start = 0;
};

inline void EmitChunkTokens(const char* data, std::size_t base,
                            std::size_t len, std::uint64_t ws, SplitState& st,
                            std::vector<std::string_view>* out) {
  const std::uint64_t valid =
      len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << len) - 1);
  std::size_t pos = 0;
  while (pos < len) {
    const std::uint64_t from = ~std::uint64_t{0} << pos;
    if (!st.in_token) {
      const std::uint64_t cand = ~ws & valid & from;
      if (cand == 0) break;
      pos = static_cast<std::size_t>(__builtin_ctzll(cand));
      st.in_token = true;
      st.start = base + pos;
    } else {
      const std::uint64_t cand = ws & valid & from;
      if (cand == 0) break;
      pos = static_cast<std::size_t>(__builtin_ctzll(cand));
      out->push_back(std::string_view(data + st.start, base + pos - st.start));
      st.in_token = false;
    }
  }
}

// ---- SSE2 kernels --------------------------------------------------------

std::size_t FindByteSse2(const char* data, std::size_t n, std::size_t from,
                         char byte) noexcept {
  if (from >= n) return n;
  const __m128i needle = _mm_set1_epi8(byte);
  std::size_t i = from;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (data[i] == byte) return i;
  }
  return n;
}

std::uint32_t WsMaskSse2(const char* p) noexcept {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i ws = _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(' ')),
                                  _mm_cmpeq_epi8(v, _mm_set1_epi8('\t')));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(ws));
}

void SplitWhitespaceSse2(std::string_view text,
                         std::vector<std::string_view>* out) {
  out->clear();
  const char* data = text.data();
  const std::size_t n = text.size();
  SplitState st;
  std::size_t base = 0;
  for (; base + 16 <= n; base += 16) {
    EmitChunkTokens(data, base, 16, WsMaskSse2(data + base), st, out);
  }
  if (base < n) {
    // Stage the tail into a zeroed stack chunk: no overread, and the zero
    // padding sits past `len`, masked off inside EmitChunkTokens.
    char buf[16] = {};
    std::memcpy(buf, data + base, n - base);
    EmitChunkTokens(data, base, n - base, WsMaskSse2(buf), st, out);
  }
  if (st.in_token) {
    out->push_back(std::string_view(data + st.start, n - st.start));
  }
}

bool ValidateDigitsSse2(const char* data, std::size_t n) noexcept {
  const __m128i zero_ch = _mm_set1_epi8('0');
  const __m128i nine = _mm_set1_epi8(9);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    // (c - '0') as unsigned saturating-minus 9 is zero iff c is a digit.
    const __m128i shifted = _mm_sub_epi8(v, zero_ch);
    const __m128i over = _mm_subs_epu8(shifted, nine);
    const int mask =
        _mm_movemask_epi8(_mm_cmpeq_epi8(over, _mm_setzero_si128()));
    if (mask != 0xFFFF) return false;
  }
  for (; i < n; ++i) {
    if (data[i] < '0' || data[i] > '9') return false;
  }
  return true;
}

constexpr KernelTable kSse2Table = {
    FindByteSse2,      SplitWhitespaceSse2, HashBytesWide,
    ValidateDigitsSse2, EqualDate10Sse2,    ParseClock8Swar,
};

// ---- AVX2 kernels --------------------------------------------------------
//
// Compiled with per-function target attributes so this TU builds with the
// project's baseline flags and the AVX2 code only ever executes after
// __builtin_cpu_supports("avx2") said yes.

__attribute__((target("avx2"))) std::size_t FindByteAvx2(
    const char* data, std::size_t n, std::size_t from, char byte) noexcept {
  if (from >= n) return n;
  const __m256i needle = _mm256_set1_epi8(byte);
  std::size_t i = from;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  return FindByteSse2(data, n, i, byte);
}

__attribute__((target("avx2"))) std::uint32_t WsMaskAvx2(
    const char* p) noexcept {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i ws =
      _mm256_or_si256(_mm256_cmpeq_epi8(v, _mm256_set1_epi8(' ')),
                      _mm256_cmpeq_epi8(v, _mm256_set1_epi8('\t')));
  return static_cast<std::uint32_t>(_mm256_movemask_epi8(ws));
}

__attribute__((target("avx2"))) void SplitWhitespaceAvx2(
    std::string_view text, std::vector<std::string_view>* out) {
  out->clear();
  const char* data = text.data();
  const std::size_t n = text.size();
  SplitState st;
  std::size_t base = 0;
  for (; base + 32 <= n; base += 32) {
    EmitChunkTokens(data, base, 32, WsMaskAvx2(data + base), st, out);
  }
  if (base < n) {
    char buf[32] = {};
    std::memcpy(buf, data + base, n - base);
    EmitChunkTokens(data, base, n - base, WsMaskAvx2(buf), st, out);
  }
  if (st.in_token) {
    out->push_back(std::string_view(data + st.start, n - st.start));
  }
}

__attribute__((target("avx2"))) bool ValidateDigitsAvx2(
    const char* data, std::size_t n) noexcept {
  const __m256i zero_ch = _mm256_set1_epi8('0');
  const __m256i nine = _mm256_set1_epi8(9);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i shifted = _mm256_sub_epi8(v, zero_ch);
    const __m256i over = _mm256_subs_epu8(shifted, nine);
    const int mask = _mm256_movemask_epi8(
        _mm256_cmpeq_epi8(over, _mm256_setzero_si256()));
    if (mask != -1) return false;
  }
  return ValidateDigitsSse2(data + i, n - i);
}

constexpr KernelTable kAvx2Table = {
    FindByteAvx2,      SplitWhitespaceAvx2, HashBytesWide,
    ValidateDigitsAvx2, EqualDate10Sse2,    ParseClock8Swar,
};

#endif  // SLD_SIMD_X86

Level DetectMaxLevel() noexcept {
#if SLD_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

// Startup level: CPUID ceiling, optionally lowered by SLD_SIMD.  Unknown
// names (other than the "use the ceiling" spellings) and over-capability
// requests warn on stderr and fall back to the detected level — an env
// typo must not silently change which code runs.
Level StartupLevel() noexcept {
  const Level detected = DetectMaxLevel();
  const char* env = std::getenv("SLD_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "native") == 0 ||
      std::strcmp(env, "auto") == 0) {
    return detected;
  }
  const std::optional<Level> want = LevelFromName(env);
  if (!want.has_value()) {
    std::fprintf(stderr,
                 "sld: SLD_SIMD=%s is not scalar|sse2|avx2|native; using %s\n",
                 env, LevelName(detected));
    return detected;
  }
  if (*want > detected) {
    std::fprintf(stderr,
                 "sld: SLD_SIMD=%s is not supported on this cpu; using %s\n",
                 env, LevelName(detected));
    return detected;
  }
  return *want;
}

[[maybe_unused]] const bool g_startup_level_applied = [] {
  SetLevel(StartupLevel());
  return true;
}();

}  // namespace

namespace detail {
constinit std::atomic<const KernelTable*> g_active{&kScalarTable};
}  // namespace detail

const KernelTable& TableFor(Level level) noexcept {
#if SLD_SIMD_X86
  switch (level) {
    case Level::kAvx2:
      return kAvx2Table;
    case Level::kSse2:
      return kSse2Table;
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return kScalarTable;
}

Level MaxSupported() noexcept {
  static const Level detected = DetectMaxLevel();
  return detected;
}

Level ActiveLevel() noexcept {
  const KernelTable* table = detail::g_active.load(std::memory_order_relaxed);
#if SLD_SIMD_X86
  if (table == &kAvx2Table) return Level::kAvx2;
  if (table == &kSse2Table) return Level::kSse2;
#endif
  (void)table;
  return Level::kScalar;
}

Level SetLevel(Level want) noexcept {
  const Level max = MaxSupported();
  const Level got = want <= max ? want : max;
  detail::g_active.store(&TableFor(got), std::memory_order_relaxed);
  return got;
}

std::optional<Level> LevelFromName(std::string_view name) noexcept {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse2") return Level::kSse2;
  if (name == "avx2") return Level::kAvx2;
  return std::nullopt;
}

const char* LevelName(Level level) noexcept {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace sld::simd
