// A bounded blocking queue for pipeline stages (producer/consumer).
//
// The deployment shape of the online system is a receiver thread feeding
// a digester thread; this queue is the seam between them.  Push blocks
// when full (back-pressure toward the socket), Pop blocks when empty.
// Close() releases both sides: pushes fail, pops drain the remaining
// items and then return nullopt.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace sld {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until space is available; returns false if the queue closed.
  bool Push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available; nullopt once closed AND drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop; nullopt when currently empty (closed or not).
  std::optional<T> TryPop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Blocks until at least one item is available, then drains everything
  // queued in one lock acquisition (amortizes contention for consumers
  // that can work in batches).  Empty result once closed AND drained.
  std::deque<T> PopAll() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    std::deque<T> out;
    out.swap(items_);
    lock.unlock();
    not_full_.notify_all();
    return out;
  }

  // Marks the stream finished; wakes all waiters.
  void Close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sld
