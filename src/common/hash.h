// Small non-cryptographic hashing helpers.
//
// Both hashes are allocation-free, which is what the zero-allocation match
// hot path needs.  Fnv1a64 is the simple byte-serial reference (and
// constexpr); HashBytes is the word-chunked variant the match memo cache
// uses to key (code, detail) pairs, since hashing the full detail is the
// single largest cost of a memo hit.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace sld {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

// 64-bit FNV-1a over `bytes`, chainable through `seed`.
constexpr std::uint64_t Fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnv1aOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

// Word-chunked multiply-xorshift hash, chainable through `seed`.  FNV's
// byte-serial dependency chain costs ~1 cycle/byte; syslog details run
// 40-80 bytes, so the per-message memo key eats 8 bytes per step instead.
// The length is folded into the seed, so concatenation ambiguity
// ("ab"+"c" vs "a"+"bc") cannot collide across chained calls.
inline std::uint64_t HashBytes(std::string_view bytes,
                               std::uint64_t seed = kFnv1aOffset) noexcept {
  constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ull;
  std::uint64_t h =
      seed ^ (static_cast<std::uint64_t>(bytes.size()) * kMul);
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
  }
  if (i < bytes.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + i, bytes.size() - i);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace sld
