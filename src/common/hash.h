// Small non-cryptographic hashing helpers.
//
// Both hashes are allocation-free, which is what the zero-allocation match
// hot path needs.  Fnv1a64 is the simple byte-serial reference (and
// constexpr); HashBytes is the word-chunked variant the match memo cache
// uses to key (code, detail) pairs, since hashing the full detail is the
// single largest cost of a memo hit.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/simd.h"

namespace sld {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

// 64-bit FNV-1a over `bytes`, chainable through `seed`.
constexpr std::uint64_t Fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnv1aOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

// Multiplier of the word-chunked hash; shared with the SIMD kernels so
// every dispatch level computes the identical chain.
inline constexpr std::uint64_t kHashMul = 0x9e3779b97f4a7c15ull;

// Word-chunked multiply-xorshift hash, chainable through `seed`.  FNV's
// byte-serial dependency chain costs ~1 cycle/byte; syslog details run
// 40-80 bytes, so the per-message memo key eats 8 bytes per step instead.
// The length is folded into the seed, so concatenation ambiguity
// ("ab"+"c" vs "a"+"bc") cannot collide across chained calls.
//
// This is the scalar oracle: the dispatched HashBytes below returns the
// same 64-bit value at every SIMD level (serialized memo keys and bench
// identities depend on that), which the differential kernel tests assert.
inline std::uint64_t HashBytesScalar(
    std::string_view bytes, std::uint64_t seed = kFnv1aOffset) noexcept {
  std::uint64_t h =
      seed ^ (static_cast<std::uint64_t>(bytes.size()) * kHashMul);
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h = (h ^ w) * kHashMul;
    h ^= h >> 29;
  }
  if (i < bytes.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + i, bytes.size() - i);
    h = (h ^ w) * kHashMul;
    h ^= h >> 29;
  }
  return h;
}

// Dispatched form used by the match memo key and everything else hot.
inline std::uint64_t HashBytes(std::string_view bytes,
                               std::uint64_t seed = kFnv1aOffset) noexcept {
  return simd::HashBytes(bytes, seed);
}

}  // namespace sld
