// Internal seam between WireFront and the liburing-backed drain engine.
//
// The uring implementation (uring.cc) is compiled only when liburing is
// found (SLD_HAVE_URING); wirefront.cc supplies returning-null stubs
// otherwise, so the rest of the front never mentions liburing types and
// links the same either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sld::wirefront::internal {

// Mirrors WireFront::kInterrupted / kError.
inline constexpr std::ptrdiff_t kWaitInterrupted = -1;
inline constexpr std::ptrdiff_t kWaitError = -2;

class UringDriver {
 public:
  virtual ~UringDriver() = default;

  // deliver(flat_listener, payload, ovfl): payload points into a
  // registered buffer, valid only during the call; ovfl is the kernel's
  // cumulative SO_RXQ_OVFL counter when present on this datagram.
  using Deliver = std::function<void(std::size_t flat, std::string_view payload,
                                     const std::uint32_t* ovfl)>;

  // Waits up to timeout_ms for completions, delivers at most `max`
  // datagrams (0 = every completion available), leaves the rest queued.
  // Returns the delivered count, kWaitInterrupted, or kWaitError.
  virtual std::ptrdiff_t Wait(int timeout_ms, std::size_t max,
                              const Deliver& deliver) = 0;
};

// Builds a driver with one multishot recvmsg arm per fd.  Null with
// *error set when liburing is compiled out or setup fails at runtime.
std::unique_ptr<UringDriver> MakeUringDriver(const std::vector<int>& fds,
                                             int ring_buffers,
                                             int ring_buffer_bytes,
                                             std::string* error);

// True when liburing is compiled in and a probe ring with a registered
// buffer ring can be set up on this kernel.
bool UringRuntimeSupported();

}  // namespace sld::wirefront::internal
