// Batched wire front: the live ingest layer between the kernel's UDP
// sockets and the Engine layer.
//
// Topology.  Each tenant owns one UDP port fanned out across K listener
// sockets via SO_REUSEPORT (the kernel hashes datagrams across the
// sockets by flow, so many routers spread over the listeners while one
// router's stream stays ordered on one socket).  All K listeners feed
// the SAME tenant sink — the Collector behind it keeps a single release
// watermark, so fan-out changes throughput, never semantics.
//
// Backends.  Two drain strategies behind one PollOnce() surface,
// selected at Open time (SLD_WIRE=poll|uring overrides, mirroring the
// SLD_SIMD dispatch pattern):
//   - kPoll:  poll() across all listeners, then batched recvmmsg with
//     MSG_DONTWAIT per ready socket into a preallocated slab.  Always
//     available; this is what runs under TSan.
//   - kUring: io_uring multishot recvmsg over registered buffer rings —
//     one standing SQE per listener, the kernel writes each datagram
//     into a ring-provided buffer and posts a CQE; no per-datagram
//     syscall at all.  Compiled only when liburing is found
//     (SLD_WITH_URING); falls back to kPoll when the running kernel
//     lacks the opcodes.
//
// Both backends deliver each datagram to the sink as a string_view into
// front-owned storage (valid only during the sink call) and allocate
// nothing per datagram in steady state.  Kernel receive-queue drops are
// accounted via SO_RXQ_OVFL ancillary data (the lossless-loopback
// invariant: accepted + kernel_drops + malformed = sent).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"
#include "syslog/udp.h"

namespace sld::wirefront {

// UDP's practical ceiling; the poll backend receives up to this per
// datagram.  The uring backend's per-buffer capacity is WireOptions::
// ring_buffer_bytes (oversize datagrams truncate there).
inline constexpr std::size_t kMaxDatagram = 64 * 1024;

enum class Backend : int { kPoll = 0, kUring = 1 };

const char* BackendName(Backend backend) noexcept;
std::optional<Backend> BackendFromName(std::string_view name) noexcept;

// True when the io_uring backend was compiled in (liburing found) AND
// the running kernel accepts a ring with a registered buffer ring.
bool UringSupported();

// kUring when supported, else kPoll.  SLD_WIRE=poll|uring overrides;
// requesting uring where unsupported clamps to kPoll with a warning on
// stderr, like an unknown value.
Backend DefaultBackend();

struct WireOptions {
  // nullopt = DefaultBackend().  An explicit kUring fails Open (instead
  // of clamping) when uring is unsupported, so tests can distinguish
  // "asked and missing" from "fell back".
  std::optional<Backend> backend;
  // SO_REUSEPORT listeners per tenant port.
  int listeners = 1;
  // Datagrams harvested per recvmmsg call (poll backend) and the CQE
  // batch bound per wakeup (uring backend).
  int batch = 64;
  // Uring: registered buffers per listener (rounded up to a power of
  // two) and the capacity of each.  ring_buffers * ring_buffer_bytes of
  // locked memory per listener.
  int ring_buffers = 256;
  int ring_buffer_bytes = 16 * 1024;
  // Kernel receive buffer request per listener (clamped by the kernel;
  // the grant is exported as the wire_rcvbuf_bytes gauge).
  int rcvbuf_bytes = 4 * 1024 * 1024;
};

struct TenantPort {
  std::uint16_t port = 0;          // 0 = ephemeral (see port_of())
  obs::Registry* metrics = nullptr;  // tenant-scoped view; may be null
};

class WireFront {
 public:
  // Called once per delivered datagram; `datagram` points into
  // front-owned storage and is valid only for the duration of the call.
  using Sink = std::function<void(std::size_t tenant, std::string_view datagram)>;

  // PollOnce status codes (returns >= 0 otherwise).
  static constexpr std::ptrdiff_t kInterrupted = -1;  // EINTR hit the wait
  static constexpr std::ptrdiff_t kError = -2;        // unrecoverable

  // Binds listeners * tenants.size() sockets and readies the backend.
  // Returns nullptr with a human-readable *error on failure (duplicate
  // explicit ports, bind failure, explicit-uring without support, ...).
  static std::unique_ptr<WireFront> Open(const WireOptions& options,
                                         const std::vector<TenantPort>& tenants,
                                         std::string* error);

  ~WireFront();
  WireFront(const WireFront&) = delete;
  WireFront& operator=(const WireFront&) = delete;

  Backend backend() const noexcept { return backend_; }
  std::size_t tenant_count() const noexcept { return tenants_; }
  int listeners_per_tenant() const noexcept { return listeners_per_tenant_; }
  std::uint16_t port_of(std::size_t tenant) const noexcept;

  // Waits up to timeout_ms for traffic on any listener, then drains
  // every ready listener in batches, invoking `sink` once per datagram.
  // `max` bounds the datagrams delivered this round (0 = drain all that
  // are ready); undelivered datagrams stay queued for the next call.
  // Returns the count delivered (0 = quiet round), kInterrupted when a
  // signal cut the wait short, kError on unrecoverable failure.
  std::ptrdiff_t PollOnce(int timeout_ms, std::size_t max, const Sink& sink);

  // Cumulative totals across all listeners.
  std::uint64_t datagrams() const noexcept { return total_datagrams_; }
  std::uint64_t kernel_drops() const noexcept { return total_drops_; }

  // Per-listener introspection over the flat listener index
  // [0, tenant_count * listeners_per_tenant); listeners are grouped by
  // tenant: flat = tenant * listeners_per_tenant + i.
  std::size_t listener_count() const noexcept;
  std::uint64_t listener_datagrams(std::size_t flat) const noexcept;

 private:
  struct Listener;
  struct UringState;

  WireFront() = default;

  std::ptrdiff_t PollBackendOnce(int timeout_ms, std::size_t max,
                                 const Sink& sink);
  std::ptrdiff_t UringBackendOnce(int timeout_ms, std::size_t max,
                                  const Sink& sink);
  // Drains one listener with recvmmsg; `cap` 0 = unbounded.
  std::size_t DrainListener(Listener& listener, std::size_t cap,
                            const Sink& sink);
  void Account(Listener& listener, std::uint64_t new_drops);

  Backend backend_ = Backend::kPoll;
  std::size_t tenants_ = 0;
  int listeners_per_tenant_ = 1;
  int batch_ = 64;

  std::vector<Listener> listeners_;
  // recvmmsg scratch, sized batch_ entries; see wirefront.cc.
  std::vector<char> payload_slab_;
  std::vector<char> cmsg_slab_;
  struct Scratch;
  std::unique_ptr<Scratch> scratch_;
  std::unique_ptr<UringState> uring_;

  std::uint64_t total_datagrams_ = 0;
  std::uint64_t total_drops_ = 0;
};

}  // namespace sld::wirefront
