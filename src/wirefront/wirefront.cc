#include "wirefront/wirefront.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "wirefront/uring_driver.h"

namespace sld::wirefront {
namespace {

// Ancillary space for the one cmsg we ask for (SO_RXQ_OVFL's u32).
constexpr std::size_t kCmsgSpace = CMSG_SPACE(sizeof(std::uint32_t));

}  // namespace

#ifndef SLD_HAVE_URING
// Stubs when liburing is compiled out (SLD_WITH_URING=OFF or not found):
// the uring backend reports unsupported and the front runs on recvmmsg.
namespace internal {
bool UringRuntimeSupported() { return false; }
std::unique_ptr<UringDriver> MakeUringDriver(const std::vector<int>&, int, int,
                                             std::string* error) {
  if (error) *error = "built without liburing (SLD_WITH_URING)";
  return nullptr;
}
}  // namespace internal
#endif  // !SLD_HAVE_URING

const char* BackendName(Backend backend) noexcept {
  switch (backend) {
    case Backend::kPoll:
      return "poll";
    case Backend::kUring:
      return "uring";
  }
  return "?";
}

std::optional<Backend> BackendFromName(std::string_view name) noexcept {
  if (name == "poll" || name == "recvmmsg") return Backend::kPoll;
  if (name == "uring" || name == "io_uring") return Backend::kUring;
  return std::nullopt;
}

bool UringSupported() { return internal::UringRuntimeSupported(); }

Backend DefaultBackend() {
  if (const char* env = std::getenv("SLD_WIRE"); env != nullptr && *env) {
    if (const auto forced = BackendFromName(env)) {
      if (*forced == Backend::kUring && !UringSupported()) {
        std::fprintf(stderr,
                     "wirefront: SLD_WIRE=uring but io_uring is unsupported "
                     "here; using poll\n");
        return Backend::kPoll;
      }
      return *forced;
    }
    std::fprintf(stderr,
                 "wirefront: unknown SLD_WIRE value '%s' (want poll|uring); "
                 "using default\n",
                 env);
  }
  return UringSupported() ? Backend::kUring : Backend::kPoll;
}

// One bound socket plus its accounting; listeners_[t * K + i] is tenant
// t's i-th listener.
struct WireFront::Listener {
  syslog::UdpReceiver sock;
  std::size_t tenant = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t drops = 0;
  // SO_RXQ_OVFL is a cumulative per-socket counter; deltas are taken
  // against the last value seen.
  std::uint32_t last_ovfl = 0;
  obs::Counter* datagram_cell = nullptr;
  obs::Counter* drop_cell = nullptr;

  explicit Listener(syslog::UdpReceiver s) : sock(std::move(s)) {}
};

// recvmmsg scratch: headers/iovecs sized to one batch, reused forever.
struct WireFront::Scratch {
  std::vector<mmsghdr> msgs;
  std::vector<iovec> iovs;
  std::vector<pollfd> pollfds;
};

struct WireFront::UringState {
  std::unique_ptr<internal::UringDriver> driver;
};

WireFront::~WireFront() = default;

std::unique_ptr<WireFront> WireFront::Open(
    const WireOptions& options, const std::vector<TenantPort>& tenants,
    std::string* error) {
  const auto fail = [error](std::string msg) -> std::unique_ptr<WireFront> {
    if (error) *error = std::move(msg);
    return nullptr;
  };
  if (tenants.empty()) return fail("wirefront: no tenants");
  if (options.listeners < 1 || options.listeners > 64) {
    return fail("wirefront: listeners must be in [1, 64]");
  }
  if (options.batch < 1 || options.batch > 1024) {
    return fail("wirefront: batch must be in [1, 1024]");
  }
  if (options.ring_buffers < 8 || options.ring_buffer_bytes < 2048) {
    return fail("wirefront: ring_buffers >= 8 and ring_buffer_bytes >= 2048");
  }
  // Duplicate explicit ports would make two tenants share one flow hash
  // group; reject instead of silently interleaving streams.
  for (std::size_t a = 0; a < tenants.size(); ++a) {
    for (std::size_t b = a + 1; b < tenants.size(); ++b) {
      if (tenants[a].port != 0 && tenants[a].port == tenants[b].port) {
        return fail("wirefront: duplicate tenant port " +
                    std::to_string(tenants[a].port));
      }
    }
  }

  Backend backend = options.backend.value_or(DefaultBackend());
  if (options.backend.has_value() && backend == Backend::kUring &&
      !UringSupported()) {
    return fail("wirefront: io_uring backend requested but unsupported here");
  }

  auto front = std::unique_ptr<WireFront>(new WireFront());
  front->backend_ = backend;
  front->tenants_ = tenants.size();
  front->listeners_per_tenant_ = options.listeners;
  front->batch_ = options.batch;

  const int k = options.listeners;
  front->listeners_.reserve(tenants.size() * static_cast<std::size_t>(k));
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    syslog::UdpReceiver::BindOptions bind;
    bind.rcvbuf_bytes = options.rcvbuf_bytes;
    bind.reuse_port = k > 1;
    bind.track_overflow = true;
    // Listener 0 resolves the port (possibly ephemeral); the rest of the
    // fan-out binds the resolved port with SO_REUSEPORT.
    std::uint16_t port = tenants[t].port;
    for (int i = 0; i < k; ++i) {
      auto sock = syslog::UdpReceiver::Bind(port, bind);
      if (!sock.has_value()) {
        return fail("wirefront: bind failed for tenant " + std::to_string(t) +
                    " listener " + std::to_string(i) + " port " +
                    std::to_string(port));
      }
      port = sock->port();
      Listener& ln = front->listeners_.emplace_back(std::move(*sock));
      ln.tenant = t;
      if (obs::Registry* reg = tenants[t].metrics) {
        const obs::Labels labels{{"listener", std::to_string(i)}};
        ln.datagram_cell = reg->AddCounter(
            "wire_datagrams_total", "Datagrams delivered by the wire front",
            labels);
        ln.drop_cell = reg->AddCounter(
            "wire_kernel_drops_total",
            "Datagrams dropped by the kernel receive queue (SO_RXQ_OVFL)",
            labels);
        reg->AddGauge("wire_rcvbuf_bytes",
                      "Kernel receive buffer actually granted per listener",
                      labels)
            ->Set(ln.sock.rcvbuf_bytes());
      }
    }
    if (obs::Registry* reg = tenants[t].metrics) {
      reg->AddGauge("wire_listeners", "SO_REUSEPORT listeners for this tenant")
          ->Set(k);
      reg->AddGauge("wire_backend",
                    "Active wire backend (0 = poll/recvmmsg, 1 = io_uring)")
          ->Set(static_cast<int>(backend));
    }
  }

  const auto batch = static_cast<std::size_t>(options.batch);
  front->payload_slab_.resize(batch * kMaxDatagram);
  front->cmsg_slab_.resize(batch * kCmsgSpace);
  front->scratch_ = std::make_unique<Scratch>();
  front->scratch_->msgs.resize(batch);
  front->scratch_->iovs.resize(batch);
  front->scratch_->pollfds.resize(front->listeners_.size());
  for (std::size_t i = 0; i < front->listeners_.size(); ++i) {
    front->scratch_->pollfds[i] = {front->listeners_[i].sock.fd(), POLLIN, 0};
  }

  if (backend == Backend::kUring) {
    std::vector<int> fds;
    fds.reserve(front->listeners_.size());
    for (const Listener& ln : front->listeners_) fds.push_back(ln.sock.fd());
    std::string uring_error;
    auto driver = internal::MakeUringDriver(
        fds, options.ring_buffers, options.ring_buffer_bytes, &uring_error);
    if (driver != nullptr) {
      front->uring_ = std::make_unique<UringState>();
      front->uring_->driver = std::move(driver);
    } else if (options.backend.has_value()) {
      return fail("wirefront: io_uring setup failed: " + uring_error);
    } else {
      // Auto-selected uring that fails per-instance setup (locked-memory
      // limits, seccomp, ...) degrades to the always-available backend.
      std::fprintf(stderr, "wirefront: io_uring setup failed (%s); using poll\n",
                   uring_error.c_str());
      front->backend_ = Backend::kPoll;
      for (std::size_t t = 0; t < tenants.size(); ++t) {
        if (obs::Registry* reg = tenants[t].metrics) {
          reg->AddGauge("wire_backend",
                        "Active wire backend (0 = poll/recvmmsg, 1 = io_uring)")
              ->Set(static_cast<int>(Backend::kPoll));
        }
      }
    }
  }
  return front;
}

std::uint16_t WireFront::port_of(std::size_t tenant) const noexcept {
  const std::size_t flat =
      tenant * static_cast<std::size_t>(listeners_per_tenant_);
  return flat < listeners_.size() ? listeners_[flat].sock.port() : 0;
}

std::size_t WireFront::listener_count() const noexcept {
  return listeners_.size();
}

std::uint64_t WireFront::listener_datagrams(std::size_t flat) const noexcept {
  return flat < listeners_.size() ? listeners_[flat].datagrams : 0;
}

void WireFront::Account(Listener& listener, std::uint64_t new_drops) {
  // `new_drops` is the kernel's cumulative counter at the time this
  // datagram was queued; cmsgs can repeat a value across a batch.
  if (new_drops <= listener.last_ovfl) return;
  const std::uint64_t delta = new_drops - listener.last_ovfl;
  listener.last_ovfl = static_cast<std::uint32_t>(new_drops);
  listener.drops += delta;
  total_drops_ += delta;
  if (listener.drop_cell != nullptr) listener.drop_cell->Inc(delta);
}

std::size_t WireFront::DrainListener(Listener& listener, std::size_t cap,
                                     const Sink& sink) {
  Scratch& s = *scratch_;
  const auto batch = static_cast<std::size_t>(batch_);
  std::size_t total = 0;
  for (;;) {
    std::size_t vlen = batch;
    if (cap != 0 && cap - total < vlen) vlen = cap - total;
    if (vlen == 0) break;
    // The kernel rewrites msg_controllen / msg_flags per message, so the
    // headers are re-armed each round — pointer setup only, no allocation.
    for (std::size_t i = 0; i < vlen; ++i) {
      s.iovs[i].iov_base = payload_slab_.data() + i * kMaxDatagram;
      s.iovs[i].iov_len = kMaxDatagram;
      msghdr& h = s.msgs[i].msg_hdr;
      std::memset(&h, 0, sizeof(h));
      h.msg_iov = &s.iovs[i];
      h.msg_iovlen = 1;
      h.msg_control = cmsg_slab_.data() + i * kCmsgSpace;
      h.msg_controllen = kCmsgSpace;
      s.msgs[i].msg_len = 0;
    }
    const int n = ::recvmmsg(listener.sock.fd(), s.msgs.data(),
                             static_cast<unsigned>(vlen), MSG_DONTWAIT,
                             nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: this socket is drained
    }
    for (int i = 0; i < n; ++i) {
      msghdr& h = s.msgs[i].msg_hdr;
      for (cmsghdr* c = CMSG_FIRSTHDR(&h); c != nullptr;
           c = CMSG_NXTHDR(&h, c)) {
        if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_RXQ_OVFL) {
          std::uint32_t dropped = 0;
          std::memcpy(&dropped, CMSG_DATA(c), sizeof(dropped));
          Account(listener, dropped);
        }
      }
      ++listener.datagrams;
      ++total_datagrams_;
      if (listener.datagram_cell != nullptr) listener.datagram_cell->Inc();
      sink(listener.tenant,
           std::string_view(payload_slab_.data() + i * kMaxDatagram,
                            s.msgs[i].msg_len));
    }
    total += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < vlen) break;
  }
  return total;
}

std::ptrdiff_t WireFront::PollBackendOnce(int timeout_ms, std::size_t max,
                                          const Sink& sink) {
  Scratch& s = *scratch_;
  for (pollfd& p : s.pollfds) p.revents = 0;
  const int ready =
      ::poll(s.pollfds.data(), s.pollfds.size(), timeout_ms);
  if (ready < 0) return errno == EINTR ? kInterrupted : kError;
  if (ready == 0) return 0;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    if (max != 0 && delivered >= max) break;
    if ((s.pollfds[i].revents & POLLIN) == 0) continue;
    delivered += DrainListener(listeners_[i],
                               max == 0 ? 0 : max - delivered, sink);
  }
  return static_cast<std::ptrdiff_t>(delivered);
}

std::ptrdiff_t WireFront::UringBackendOnce(int timeout_ms, std::size_t max,
                                           const Sink& sink) {
  const internal::UringDriver::Deliver deliver =
      [this, &sink](std::size_t flat, std::string_view payload,
                    const std::uint32_t* ovfl) {
        Listener& listener = listeners_[flat];
        if (ovfl != nullptr) Account(listener, *ovfl);
        ++listener.datagrams;
        ++total_datagrams_;
        if (listener.datagram_cell != nullptr) listener.datagram_cell->Inc();
        sink(listener.tenant, payload);
      };
  return uring_->driver->Wait(timeout_ms, max, deliver);
}

std::ptrdiff_t WireFront::PollOnce(int timeout_ms, std::size_t max,
                                   const Sink& sink) {
  if (backend_ == Backend::kUring && uring_ != nullptr) {
    return UringBackendOnce(timeout_ms, max, sink);
  }
  return PollBackendOnce(timeout_ms, max, sink);
}

}  // namespace sld::wirefront
