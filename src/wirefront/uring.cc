// io_uring backend: one standing multishot recvmsg SQE per listener over
// a registered buffer ring.  The kernel writes each datagram (with its
// SO_RXQ_OVFL ancillary data) into a ring-provided buffer and posts a
// CQE; userspace consumes CQEs, hands the payload to the sink, and
// recycles the buffer — no per-datagram syscall.  Compiled only when
// liburing with the buffer-ring API is found (SLD_HAVE_URING).
#include <liburing.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "wirefront/uring_driver.h"

namespace sld::wirefront::internal {
namespace {

unsigned RoundUpPow2(unsigned v) {
  unsigned p = 8;
  while (p < v) p <<= 1;
  return p;
}

class UringDriverImpl final : public UringDriver {
 public:
  static std::unique_ptr<UringDriver> Create(const std::vector<int>& fds,
                                             int ring_buffers,
                                             int ring_buffer_bytes,
                                             std::string* error);
  ~UringDriverImpl() override {
    for (PerFd& p : fds_) {
      if (p.buf_ring != nullptr) {
        io_uring_free_buf_ring(&ring_, p.buf_ring, nbufs_, p.bgid);
      }
    }
    if (ring_ready_) io_uring_queue_exit(&ring_);
  }

  std::ptrdiff_t Wait(int timeout_ms, std::size_t max,
                      const Deliver& deliver) override;

 private:
  struct PerFd {
    int fd = -1;
    unsigned bgid = 0;
    io_uring_buf_ring* buf_ring = nullptr;
    std::vector<char> pool;  // nbufs_ * buf_len_ bytes
    // Multishot recvmsg takes a template msghdr describing the name /
    // control sections the kernel should carve out of each buffer; it
    // must stay alive while the SQE is in flight.
    msghdr hdr{};
    bool armed = false;
  };

  bool ArmDisarmed();
  // Processes one CQE; returns true when a datagram was delivered.
  bool HandleCqe(io_uring_cqe* cqe, const Deliver& deliver);

  io_uring ring_{};
  bool ring_ready_ = false;
  unsigned nbufs_ = 0;
  std::size_t buf_len_ = 0;
  std::vector<PerFd> fds_;
};

std::unique_ptr<UringDriver> UringDriverImpl::Create(
    const std::vector<int>& fds, int ring_buffers, int ring_buffer_bytes,
    std::string* error) {
  auto driver = std::make_unique<UringDriverImpl>();
  driver->nbufs_ = RoundUpPow2(static_cast<unsigned>(ring_buffers));
  driver->buf_len_ = static_cast<std::size_t>(ring_buffer_bytes);

  io_uring_params params{};
  params.flags = IORING_SETUP_CQSIZE;
  unsigned cq = driver->nbufs_ * static_cast<unsigned>(fds.size());
  if (cq < 256) cq = 256;
  if (cq > 65536) cq = 65536;
  params.cq_entries = cq;
  const unsigned sq = RoundUpPow2(static_cast<unsigned>(fds.size()) * 2);
  if (const int rc = io_uring_queue_init_params(sq, &driver->ring_, &params);
      rc < 0) {
    if (error) *error = std::string("io_uring_queue_init: ") + strerror(-rc);
    return nullptr;
  }
  driver->ring_ready_ = true;

  driver->fds_.resize(fds.size());
  for (std::size_t i = 0; i < fds.size(); ++i) {
    PerFd& p = driver->fds_[i];
    p.fd = fds[i];
    p.bgid = static_cast<unsigned>(i);
    p.pool.resize(driver->nbufs_ * driver->buf_len_);
    int rc = 0;
    p.buf_ring =
        io_uring_setup_buf_ring(&driver->ring_, driver->nbufs_, p.bgid, 0, &rc);
    if (p.buf_ring == nullptr) {
      if (error) {
        *error = std::string("io_uring_setup_buf_ring: ") + strerror(-rc);
      }
      return nullptr;
    }
    const int mask = io_uring_buf_ring_mask(driver->nbufs_);
    for (unsigned b = 0; b < driver->nbufs_; ++b) {
      io_uring_buf_ring_add(p.buf_ring, p.pool.data() + b * driver->buf_len_,
                            static_cast<unsigned>(driver->buf_len_), b, mask,
                            static_cast<int>(b));
    }
    io_uring_buf_ring_advance(p.buf_ring, static_cast<int>(driver->nbufs_));
    // Reserve ancillary space for SO_RXQ_OVFL's u32 in every buffer; no
    // source-address section (msg_namelen 0).
    std::memset(&p.hdr, 0, sizeof(p.hdr));
    p.hdr.msg_controllen = CMSG_SPACE(sizeof(std::uint32_t));
  }
  if (!driver->ArmDisarmed()) {
    if (error) *error = "io_uring initial arm failed";
    return nullptr;
  }
  return driver;
}

bool UringDriverImpl::ArmDisarmed() {
  bool added = false;
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    PerFd& p = fds_[i];
    if (p.armed) continue;
    io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
    if (sqe == nullptr) {
      io_uring_submit(&ring_);
      sqe = io_uring_get_sqe(&ring_);
      if (sqe == nullptr) return false;
    }
    io_uring_prep_recvmsg_multishot(sqe, p.fd, &p.hdr, 0);
    sqe->flags |= IOSQE_BUFFER_SELECT;
    sqe->buf_group = static_cast<__u16>(p.bgid);
    io_uring_sqe_set_data64(sqe, static_cast<__u64>(i));
    p.armed = true;
    added = true;
  }
  if (added && io_uring_submit(&ring_) < 0) return false;
  return true;
}

bool UringDriverImpl::HandleCqe(io_uring_cqe* cqe, const Deliver& deliver) {
  const std::size_t i = static_cast<std::size_t>(io_uring_cqe_get_data64(cqe));
  if (i >= fds_.size()) return false;
  PerFd& p = fds_[i];
  // A CQE without F_MORE terminates the multishot stream (ENOBUFS when
  // the buffer ring ran dry, transient socket errors, ...); the next
  // Wait re-arms it — the recycled buffers below make progress certain.
  if ((cqe->flags & IORING_CQE_F_MORE) == 0) p.armed = false;
  if (cqe->res < 0) return false;
  if ((cqe->flags & IORING_CQE_F_BUFFER) == 0) return false;

  const unsigned bid = cqe->flags >> IORING_CQE_BUFFER_SHIFT;
  char* buf = p.pool.data() + bid * buf_len_;
  bool delivered = false;
  io_uring_recvmsg_out* out = io_uring_recvmsg_validate(
      buf, cqe->res, const_cast<msghdr*>(&p.hdr));
  if (out != nullptr) {
    const void* payload = io_uring_recvmsg_payload(out, &p.hdr);
    const unsigned len =
        io_uring_recvmsg_payload_length(out, cqe->res, &p.hdr);
    std::uint32_t ovfl_value = 0;
    const std::uint32_t* ovfl = nullptr;
    for (cmsghdr* c = io_uring_recvmsg_cmsg_firsthdr(out, &p.hdr); c != nullptr;
         c = io_uring_recvmsg_cmsg_nexthdr(out, &p.hdr, c)) {
      if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_RXQ_OVFL) {
        std::memcpy(&ovfl_value, CMSG_DATA(c), sizeof(ovfl_value));
        ovfl = &ovfl_value;
      }
    }
    deliver(i, std::string_view(static_cast<const char*>(payload), len), ovfl);
    delivered = true;
  }
  // Recycle only after the sink consumed the payload.
  io_uring_buf_ring_add(p.buf_ring, buf, static_cast<unsigned>(buf_len_), bid,
                        io_uring_buf_ring_mask(nbufs_), 0);
  io_uring_buf_ring_advance(p.buf_ring, 1);
  return delivered;
}

std::ptrdiff_t UringDriverImpl::Wait(int timeout_ms, std::size_t max,
                                     const Deliver& deliver) {
  if (!ArmDisarmed()) return kWaitError;
  std::size_t delivered = 0;
  bool waited = false;
  for (;;) {
    if (max != 0 && delivered >= max) break;
    io_uring_cqe* cqe = nullptr;
    int rc = io_uring_peek_cqe(&ring_, &cqe);
    if (rc == -EAGAIN) {
      if (delivered > 0 || waited || timeout_ms == 0) break;
      __kernel_timespec ts{};
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
      rc = io_uring_wait_cqe_timeout(&ring_, &cqe, &ts);
      waited = true;
      if (rc == -ETIME) break;
      if (rc == -EINTR) return kWaitInterrupted;
      if (rc < 0) return kWaitError;
    } else if (rc < 0) {
      return kWaitError;
    }
    if (HandleCqe(cqe, deliver)) ++delivered;
    io_uring_cqe_seen(&ring_, cqe);
  }
  // Publish any re-arms queued while draining (disarmed streams are
  // re-armed at the top of the next Wait; buffer recycles are advanced
  // already).
  return static_cast<std::ptrdiff_t>(delivered);
}

}  // namespace

bool UringRuntimeSupported() {
  static const bool supported = [] {
    io_uring ring;
    io_uring_params params{};
    if (io_uring_queue_init_params(8, &ring, &params) < 0) return false;
    int rc = 0;
    io_uring_buf_ring* br = io_uring_setup_buf_ring(&ring, 8, 0, 0, &rc);
    bool ok = br != nullptr;
    if (br != nullptr) io_uring_free_buf_ring(&ring, br, 8, 0);
    if (ok) {
      io_uring_probe* probe = io_uring_get_probe_ring(&ring);
      ok = probe != nullptr &&
           io_uring_opcode_supported(probe, IORING_OP_RECVMSG);
      if (probe != nullptr) io_uring_free_probe(probe);
    }
    io_uring_queue_exit(&ring);
    return ok;
  }();
  return supported;
}

std::unique_ptr<UringDriver> MakeUringDriver(const std::vector<int>& fds,
                                             int ring_buffers,
                                             int ring_buffer_bytes,
                                             std::string* error) {
  if (fds.empty()) {
    if (error) *error = "no sockets";
    return nullptr;
  }
  if (!UringRuntimeSupported()) {
    if (error) *error = "kernel lacks io_uring buffer-ring support";
    return nullptr;
  }
  return UringDriverImpl::Create(fds, ring_buffers, ring_buffer_bytes, error);
}

}  // namespace sld::wirefront::internal
