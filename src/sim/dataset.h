// A generated evaluation dataset: topology + configs + a time-sorted syslog
// stream with ground-truth event labels and synthesized trouble tickets.
//
// This stands in for the paper's "Dataset A" (tier-1 ISP backbone) and
// "Dataset B" (IPTV backbone) feeds.  Ground truth lets the reproduction
// *measure* what the paper validated manually: which raw messages belong to
// the same network condition, what the true templates are, and which
// events operations would have ticketed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "net/topology.h"
#include "syslog/record.h"

namespace sld::sim {

// One injected network condition and the messages it triggered.
struct GtEvent {
  int id = 0;
  std::string kind;  // e.g. "link-flap", "bgp-vpn-flap", "pim-dual-failure"
  TimeMs start = 0;
  TimeMs end = 0;
  std::vector<std::size_t> message_indices;  // into Dataset::messages
  std::vector<net::RouterId> routers;        // involved routers
  std::string state;                         // coarse location (e.g. "TX")
};

// An operations trouble ticket synthesized from a ground-truth event
// (§5.3's validation data).
struct TroubleTicket {
  int case_id = 0;
  int gt_event_id = 0;
  TimeMs created = 0;
  std::string state;  // event location at state granularity
  int update_count = 0;  // proxy for importance, as in the paper
};

struct Dataset {
  std::string name;  // "A" or "B"
  net::Topology topo;
  std::vector<std::string> configs;            // per-router config text
  std::vector<syslog::SyslogRecord> messages;  // sorted by timestamp
  std::vector<GtEvent> ground_truth;
  std::vector<TroubleTicket> tickets;
  // Every distinct ground-truth template emitted into `messages`, with its
  // occurrence count (the learner can only be expected to recover
  // templates it has seen enough of — the paper's §4.1.1 caveat).
  std::map<std::string, std::size_t> gt_templates;

  // Day index (0-based, relative to `epoch`) of a timestamp.
  int DayOf(TimeMs t) const noexcept {
    return static_cast<int>((t - epoch) / kMsPerDay);
  }
  TimeMs epoch = 0;  // midnight starting the first generated day
  int num_days = 0;
};

}  // namespace sld::sim
