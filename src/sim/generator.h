// Dataset generator: drives fault scenarios over a generated topology and
// renders the resulting syslog stream with ground-truth labels.
//
// Determinism: the output is a pure function of (spec, day0, days, seed).
// The same spec with different (day0, seed) yields the offline learning
// period and the online evaluation period of the paper's methodology
// (three months learning, two weeks online).
#pragma once

#include <cstdint>

#include "sim/dataset.h"
#include "sim/workload.h"

namespace sld::sim {

// Generates `days` days of syslog starting at absolute day index `day0`
// (day 0 is DatasetEpoch()).  Scenario kinds whose `from_day` lies beyond
// the generated window simply never fire.
Dataset GenerateDataset(const DatasetSpec& spec, int day0, int days,
                        std::uint64_t seed);

}  // namespace sld::sim
