#include "sim/workload.h"

namespace sld::sim {

TimeMs DatasetEpoch() noexcept {
  // 2009-09-01 00:00:00 UTC — the start of the paper's three-month
  // offline learning window (Sep-Nov 2009).
  return ToTimeMs(CivilTime{2009, 9, 1, 0, 0, 0, 0});
}

DatasetSpec DatasetASpec() {
  DatasetSpec spec;
  spec.name = "A";
  spec.topo.vendor = net::Vendor::kV1;
  spec.topo.num_routers = 40;
  spec.topo.slots_per_router = 4;
  spec.topo.ports_per_slot = 6;
  spec.topo.subifs_per_phys = 2;
  spec.topo.seed = 11;

  ScenarioRates& r = spec.rates;
  r.link_flap = {8, 0};
  r.controller_flap = {3, 0};
  r.bundle_flap = {2, 0};
  r.bgp_vpn_flap = {8, 0};
  r.ibgp_flap = {2, 0};
  r.cpu_spike = {4, 0};
  r.bad_auth_scan = {6, 0};
  r.login_scan = {5, 0};
  r.config_change = {8, 0};
  r.env_alarm = {1, 0};
  r.card_oir = {8, 0};
  r.maintenance_window = {1.5, 0};
  r.rp_switchover = {0.5, 0};
  r.duplex_mismatch = {2, 14};  // CDP nuisance appears after a week-2 upgrade
  // New behaviours staggered over the learning window so the weekly rule
  // base grows before it stabilizes (Figs. 8-9).
  r.bundle_flap.from_day = 21;
  r.env_alarm.from_day = 35;
  r.timer_noise_per_router_day = 96;
  r.random_noise_per_day = 25;
  return spec;
}

DatasetSpec DatasetBSpec() {
  DatasetSpec spec;
  spec.name = "B";
  spec.topo.vendor = net::Vendor::kV2;
  spec.topo.num_routers = 32;
  spec.topo.slots_per_router = 3;
  spec.topo.ports_per_slot = 8;
  spec.topo.subifs_per_phys = 1;
  spec.topo.num_paths = 16;
  spec.topo.path_len = 4;
  spec.topo.seed = 22;

  ScenarioRates& r = spec.rates;
  r.link_flap = {6, 0};
  r.controller_flap = {0, 0};
  r.bundle_flap = {2, 0};
  r.bgp_vpn_flap = {6, 0};
  r.ibgp_flap = {2, 0};
  r.cpu_spike = {3, 0};
  r.bad_auth_scan = {6, 0};
  r.login_scan = {6, 0};
  r.config_change = {6, 0};
  r.env_alarm = {1, 0};
  r.card_oir = {4, 0};
  r.maintenance_window = {1, 0};
  r.rp_switchover = {0.5, 0};
  r.sap_churn = {5, 0};
  r.service_churn = {5, 28};       // IPTV service churn appears in week 5
  r.pim_dual_failure = {0.08, 0};  // extremely rare (§6.1)
  r.duplex_mismatch = {0, 0};
  r.login_scan.from_day = 42;      // scanner campaign starts in week 7
  r.timer_noise_per_router_day = 96;
  r.random_noise_per_day = 20;
  return spec;
}

}  // namespace sld::sim
