#include "sim/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <set>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "net/config_writer.h"
#include "sim/messages.h"

namespace sld::sim {
namespace {

using net::kInvalidId;
using net::LinkId;
using net::PhysIfId;
using net::RouterId;
using net::Topology;
using net::Vendor;

constexpr std::array<std::string_view, 14> kUsers = {
    "admin",  "neteng", "oper1",   "oper2", "backup", "noc",   "autossh",
    "root",   "jsmith", "mjones",  "tchen", "provis", "nagios", "rancid"};

// Accumulates messages before the final time sort.
struct Pending {
  TimeMs t = 0;
  RouterId router = kInvalidId;
  Msg msg;
  int event_id = -1;  // -1: background noise, not a ground-truth event
};

// External (never-configured) source address, e.g. a scanner.
std::string ExternalIp(Rng& rng) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "203.0.%d.%d",
                static_cast<int>(rng.UniformInt(0, 255)),
                static_cast<int>(rng.UniformInt(1, 254)));
  return buf;
}

// Management-LAN address (also not in router configs).
std::string MgmtIp(Rng& rng) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "172.30.0.%d",
                static_cast<int>(rng.UniformInt(1, 254)));
  return buf;
}

std::string ControllerName(const net::PhysIf& phys) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "T1 %d/%d", phys.slot, phys.port);
  return buf;
}

// The whole generation pass lives in one context object so scenario
// emitters can share the topology, the output buffer, and per-kind RNGs.
class Generator {
 public:
  Generator(const DatasetSpec& spec, int day0, int days, std::uint64_t seed)
      : spec_(spec),
        day0_(day0),
        days_(days),
        rng_(seed ^ 0x5851f42d4c957f2dULL),
        topo_(net::GenerateTopology(spec.topo)) {
    // Zipf-like router activity weights: a few routers are much chattier.
    router_weight_.resize(topo_.routers.size());
    std::vector<std::size_t> order(topo_.routers.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.Shuffle(order);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      router_weight_[order[rank]] = 1.0 / std::pow(rank + 1.0, 0.8);
    }
  }

  Dataset Run() {
    const TimeMs window_start = DatasetEpoch() + day0_ * kMsPerDay;
    for (int d = 0; d < days_; ++d) {
      const int abs_day = day0_ + d;
      const TimeMs day_start = window_start + d * kMsPerDay;
      RunDay(abs_day, day_start);
    }
    return Finalize(window_start);
  }

 private:
  // ---- scheduling -------------------------------------------------------

  void RunDay(int abs_day, TimeMs day_start) {
    const ScenarioRates& r = spec_.rates;
    const bool v1 = spec_.topo.vendor == Vendor::kV1;
    ForEach(r.link_flap, abs_day, day_start,
            [&](TimeMs t) { LinkFlap(t); });
    if (v1) {
      ForEach(r.controller_flap, abs_day, day_start,
              [&](TimeMs t) { ControllerFlap(t); });
    }
    ForEach(r.bundle_flap, abs_day, day_start,
            [&](TimeMs t) { BundleFlap(t); });
    ForEach(r.bgp_vpn_flap, abs_day, day_start,
            [&](TimeMs t) { BgpVpnFlap(t); });
    ForEach(r.ibgp_flap, abs_day, day_start, [&](TimeMs t) { IbgpFlap(t); });
    ForEach(r.cpu_spike, abs_day, day_start, [&](TimeMs t) { CpuSpike(t); });
    ForEach(r.bad_auth_scan, abs_day, day_start,
            [&](TimeMs t) { BadAuthScan(t); });
    ForEach(r.login_scan, abs_day, day_start,
            [&](TimeMs t) { LoginScan(t); });
    ForEachBusinessHours(r.config_change, abs_day, day_start,
                         [&](TimeMs t) { ConfigChange(t); });
    ForEach(r.env_alarm, abs_day, day_start, [&](TimeMs t) { EnvAlarm(t); });
    ForEachBusinessHours(r.card_oir, abs_day, day_start,
                         [&](TimeMs t) { CardOir(t); });
    ForEachBusinessHours(r.maintenance_window, abs_day, day_start,
                         [&](TimeMs t) { MaintenanceWindow(t); });
    ForEach(r.rp_switchover, abs_day, day_start,
            [&](TimeMs t) { RpSwitchover(t); });
    if (!v1) {
      ForEach(r.sap_churn, abs_day, day_start,
              [&](TimeMs t) { SapChurn(t); });
      ForEach(r.service_churn, abs_day, day_start,
              [&](TimeMs t) { ServiceChurn(t); });
      ForEach(r.pim_dual_failure, abs_day, day_start,
              [&](TimeMs t) { PimDualFailure(t); });
    }
    if (v1) {
      ForEach(r.duplex_mismatch, abs_day, day_start,
              [&](TimeMs t) { DuplexTrain(t); });
    }
    TimerNoise(day_start);
    RandomNoise(day_start);
  }

  template <typename Fn>
  void ForEach(const Rate& rate, int abs_day, TimeMs day_start, Fn&& fn) {
    if (abs_day < rate.from_day) return;
    const std::int64_t n = rng_.Poisson(rate.per_day);
    for (std::int64_t i = 0; i < n; ++i) {
      fn(day_start + rng_.UniformInt(0, kMsPerDay - 1));
    }
  }

  // Human-driven activity (maintenance, config work) clusters in business
  // hours rather than spreading uniformly over the day.
  template <typename Fn>
  void ForEachBusinessHours(const Rate& rate, int abs_day, TimeMs day_start,
                            Fn&& fn) {
    if (abs_day < rate.from_day) return;
    const std::int64_t n = rng_.Poisson(rate.per_day);
    for (std::int64_t i = 0; i < n; ++i) {
      const double hour =
          std::clamp(rng_.Normal(13.5, 3.0), 7.0, 20.0);
      fn(day_start + static_cast<TimeMs>(hour * kMsPerHour) +
         rng_.UniformInt(0, kMsPerHour - 1));
    }
  }

  // ---- emission helpers -------------------------------------------------

  int NewEvent(std::string kind, RouterId router) {
    GtEvent ev;
    ev.id = static_cast<int>(events_.size());
    ev.kind = std::move(kind);
    ev.state = topo_.routers[router].state;
    events_.push_back(std::move(ev));
    return events_.back().id;
  }

  void Emit(TimeMs t, RouterId router, Msg msg, int event_id) {
    pending_.push_back({t, router, std::move(msg), event_id});
  }

  // Appends an empty Pending and returns its Msg for an appending message
  // overload to render into — no value-form temporaries.  Only statements
  // with at most ONE total RNG draw may use it: C++ leaves argument
  // evaluation order unspecified, so a multi-draw statement converted to
  // this shape could reorder draws and change dataset bytes.  Multi-draw
  // statements keep the value-form Emit.
  Msg* Slot(TimeMs t, RouterId router, int event_id) {
    pending_.push_back({t, router, Msg{}, event_id});
    return &pending_.back().msg;
  }

  // Zipf-weighted pick: used for the high-volume, low-event message
  // sources (scans, nuisance trains, background noise) so some routers
  // are much chattier without hosting proportionally more events.
  RouterId PickRouter() {
    return static_cast<RouterId>(rng_.Weighted(router_weight_));
  }

  // Uniform pick: used for genuine network events, which strike routers
  // far more evenly than message volume does (the paper's Fig. 13).
  RouterId PickRouterUniform() {
    return static_cast<RouterId>(rng_.Index(topo_.routers.size()));
  }

  // Activity weight normalized to [0, 1]; chatty routers host LONGER
  // nuisance trains (not more events), which is what makes high message
  // counts compress best (Fig. 13).
  double WeightOf(RouterId r) const {
    return router_weight_[r];  // max weight is 1.0 by construction
  }

  bool V1() const { return spec_.topo.vendor == Vendor::kV1; }

  TimeMs Jitter(TimeMs max_ms) {
    return rng_.UniformInt(0, std::max<TimeMs>(max_ms, 1));
  }

  // Emits the vendor-appropriate "interface down/up" cascade for one side
  // of a link flap: physical layer first, then line protocol / SAPs, then
  // routing-protocol consequences with their own (probabilistic) lags.
  void EmitIfFlapSide(int ev, RouterId router, PhysIfId phys_id, TimeMs t,
                      bool up, RouterId peer) {
    const net::PhysIf& phys = topo_.phys_ifs[phys_id];
    const TimeMs base = t + Jitter(800);
    if (V1()) {
      V1LinkUpDown(phys.name, up, Slot(base, router, ev));
      for (const net::LogicalIfId lid : phys.logical_ifs) {
        V1LineProtoUpDown(topo_.logical_ifs[lid].name, up,
                          Slot(base + 300 + Jitter(700), router, ev));
      }
      // OSPF notices the adjacency change a little later.
      if (peer != kInvalidId && rng_.Bernoulli(0.7)) {
        const net::LogicalIfId lid = topo_.PrimaryLogical(phys_id);
        if (lid != kInvalidId) {
          const PhysIfId peer_phys = topo_.LinkEnd(*phys.link, peer);
          const net::LogicalIfId peer_lid = topo_.PrimaryLogical(peer_phys);
          if (peer_lid != kInvalidId) {
            V1OspfAdj(topo_.logical_ifs[peer_lid].ip,
                      topo_.logical_ifs[lid].name, up,
                      Slot(base + 2000 + Jitter(8000), router, ev));
          }
        }
      }
    } else {
      V2PortState(phys.name, up, Slot(base, router, ev));
      for (const net::LogicalIfId lid : phys.logical_ifs) {
        V2LinkState(topo_.logical_ifs[lid].name, up,
                    Slot(base + 200 + Jitter(500), router, ev));
      }
      if (rng_.Bernoulli(0.9)) {
        V2SapPortChange(phys.name, Slot(base + 500 + Jitter(1500), router,
                                        ev));
      }
      if (peer != kInvalidId && !up && rng_.Bernoulli(0.5)) {
        const PhysIfId peer_phys = topo_.LinkEnd(*phys.link, peer);
        const net::LogicalIfId peer_lid = topo_.PrimaryLogical(peer_phys);
        const net::LogicalIfId lid = topo_.PrimaryLogical(phys_id);
        if (peer_lid != kInvalidId && lid != kInvalidId) {
          V2PimNeighborLoss(topo_.logical_ifs[peer_lid].ip,
                            topo_.logical_ifs[lid].name,
                            Slot(base + 1000 + Jitter(1500), router, ev));
        }
      }
    }
  }

  // ---- scenarios --------------------------------------------------------

  void LinkFlap(TimeMs t0) {
    if (topo_.links.empty()) return;
    const net::Link& link = rng_.Pick(topo_.links);
    const int ev = NewEvent("link-flap", link.router_a);
    // Heavy-tailed flap count: mostly 1-3, occasionally dozens.
    const int flaps = 1 + std::min<int>(
        static_cast<int>(1.0 / std::pow(rng_.UniformReal() + 1e-9, 0.7)) - 1,
        80);
    const TimeMs period = rng_.UniformInt(8, 60) * kMsPerSecond;
    // Paths traversing the link suffer along with it, every flap: the
    // point of local repair (the link's own routers) and the head log the
    // LSP bouncing, the head retries signalling after each drop, and IPTV
    // services riding the path react.
    std::vector<const net::Path*> affected;
    for (const net::Path& path : topo_.paths) {
      if (std::find(path.links.begin(), path.links.end(), link.id) !=
              path.links.end() &&
          rng_.Bernoulli(0.8)) {
        affected.push_back(&path);
      }
    }
    TimeMs t = t0;
    for (int k = 0; k < flaps; ++k) {
      const TimeMs down_for = rng_.UniformInt(1, 5) * kMsPerSecond;
      EmitIfFlapSide(ev, link.router_a, link.phys_a, t, false, link.router_b);
      EmitIfFlapSide(ev, link.router_b, link.phys_b, t, false, link.router_a);
      EmitIfFlapSide(ev, link.router_a, link.phys_a, t + down_for, true,
                     link.router_b);
      EmitIfFlapSide(ev, link.router_b, link.phys_b, t + down_for, true,
                     link.router_a);
      // A sustained outage takes down iBGP over the link.
      if (down_for >= 3 * kMsPerSecond && rng_.Bernoulli(0.5)) {
        EmitIbgpOverLink(ev, link, t + 1500, down_for);
      }
      for (const net::Path* path : affected) {
        const RouterId head = path->hops.front();
        const TimeMs down_at = t + 800 + Jitter(600);
        const TimeMs up_at = t + down_for + 1000 + Jitter(2000);
        std::set<RouterId> loggers = {link.router_a, link.router_b, head};
        for (const RouterId at : loggers) {
          if (V1()) {
            V1MplsTeLsp(path->name, false,
                        Slot(down_at + Jitter(400), at, ev));
            V1MplsTeLsp(path->name, true, Slot(up_at + Jitter(800), at, ev));
          } else {
            V2LspState(path->name, false,
                       Slot(down_at + Jitter(400), at, ev));
            V2LspState(path->name, true, Slot(up_at + Jitter(800), at, ev));
          }
        }
        if (!V1() && rng_.Bernoulli(0.9)) {
          V2LspRetry(path->name, 300,
                     Slot(down_at + 1500 + Jitter(1500), head, ev));
        }
        if (!V1() && rng_.Bernoulli(0.15)) {
          // A service riding the path degrades with it (logged at the
          // point of local repair alongside the port messages).
          const int service =
              static_cast<int>(rng_.UniformInt(1000, 1200));
          V2ServiceState(service, false,
                         Slot(down_at + 3000 + Jitter(3000), link.router_a,
                              ev));
          V2ServiceState(service, true,
                         Slot(up_at + 3000 + Jitter(3000), link.router_a,
                              ev));
        }
      }
      t += static_cast<TimeMs>(period * (0.7 + 0.6 * rng_.UniformReal()));
    }
  }

  void EmitIbgpOverLink(int ev, const net::Link& link, TimeMs t,
                        TimeMs down_for) {
    for (const net::BgpSession& s : topo_.sessions) {
      if (!s.vrf.empty()) continue;
      const bool over = (s.router_a == link.router_a &&
                         s.router_b == link.router_b) ||
                        (s.router_a == link.router_b &&
                         s.router_b == link.router_a);
      if (!over) continue;
      if (V1()) {
        V1BgpAdj(s.neighbor_ip_of_a, false, BgpDownReason::kNotificationSent,
                 Slot(t + Jitter(800), s.router_a, ev));
        V1BgpAdj(s.neighbor_ip_of_b, false,
                 BgpDownReason::kNotificationReceived,
                 Slot(t + Jitter(800), s.router_b, ev));
        V1BgpAdj(s.neighbor_ip_of_a, true, BgpDownReason::kPeerClosed,
                 Slot(t + down_for + 20000 + Jitter(40000), s.router_a, ev));
        V1BgpAdj(s.neighbor_ip_of_b, true, BgpDownReason::kPeerClosed,
                 Slot(t + down_for + 20000 + Jitter(40000), s.router_b, ev));
      } else {
        V2BgpSessionState(s.neighbor_ip_of_a, false,
                          Slot(t + Jitter(800), s.router_a, ev));
        V2BgpSessionState(s.neighbor_ip_of_b, false,
                          Slot(t + Jitter(800), s.router_b, ev));
        V2BgpSessionState(
            s.neighbor_ip_of_a, true,
            Slot(t + down_for + 20000 + Jitter(40000), s.router_a, ev));
        V2BgpSessionState(
            s.neighbor_ip_of_b, true,
            Slot(t + down_for + 20000 + Jitter(40000), s.router_b, ev));
      }
      break;
    }
  }

  // An unstable controller takes its interface down many times in a short
  // interval (the paper's Fig. 4 shape).
  void ControllerFlap(TimeMs t0) {
    std::vector<PhysIfId> candidates;
    const RouterId router = PickRouterUniform();
    for (const PhysIfId pid : topo_.routers[router].phys_ifs) {
      if (topo_.phys_ifs[pid].has_controller) candidates.push_back(pid);
    }
    if (candidates.empty()) return;
    const PhysIfId pid = rng_.Pick(candidates);
    const net::PhysIf& phys = topo_.phys_ifs[pid];
    const std::string ctrl = ControllerName(phys);
    const int ev = NewEvent("controller-flap", router);
    const int flaps = static_cast<int>(rng_.UniformInt(20, 150));
    const TimeMs period = rng_.UniformInt(5, 60) * kMsPerSecond;
    TimeMs t = t0;
    const RouterId peer =
        phys.link ? topo_.LinkPeer(*phys.link, router) : kInvalidId;
    for (int k = 0; k < flaps; ++k) {
      const TimeMs down_for = rng_.UniformInt(1, 3) * kMsPerSecond;
      V1ControllerUpDown(ctrl, false, Slot(t, router, ev));
      V1ControllerUpDown(ctrl, true, Slot(t + down_for, router, ev));
      // The controller drags its interface (and the far end) along.
      if (rng_.Bernoulli(0.9)) {
        EmitIfFlapSide(ev, router, pid, t + 10000 + Jitter(20000), false,
                       peer);
        EmitIfFlapSide(ev, router, pid, t + 10000 + down_for + Jitter(20000),
                       true, peer);
        if (peer != kInvalidId && phys.link) {
          const PhysIfId peer_phys = topo_.LinkEnd(*phys.link, peer);
          EmitIfFlapSide(ev, peer, peer_phys, t + 10000 + Jitter(20000),
                         false, router);
          EmitIfFlapSide(ev, peer, peer_phys,
                         t + 10000 + down_for + Jitter(20000), true, router);
        }
      }
      t += static_cast<TimeMs>(period * (0.7 + 0.6 * rng_.UniformReal()));
    }
  }

  void BundleFlap(TimeMs t0) {
    if (topo_.bundles.empty()) return;
    const net::Bundle& bundle = rng_.Pick(topo_.bundles);
    const int ev = NewEvent("bundle-flap", bundle.router);
    const int flaps = static_cast<int>(rng_.UniformInt(1, 6));
    TimeMs t = t0;
    for (int k = 0; k < flaps; ++k) {
      const TimeMs down_for = rng_.UniformInt(2, 8) * kMsPerSecond;
      for (const PhysIfId member : bundle.members) {
        EmitIfFlapSide(ev, bundle.router, member, t, false, kInvalidId);
        EmitIfFlapSide(ev, bundle.router, member, t + down_for, true,
                       kInvalidId);
      }
      if (V1()) {
        V1LineProtoUpDown(bundle.name, false,
                          Slot(t + 1500 + Jitter(2000), bundle.router, ev));
        V1LineProtoUpDown(
            bundle.name, true,
            Slot(t + down_for + 1500 + Jitter(2000), bundle.router, ev));
      } else {
        V2LagState(bundle.name, false,
                   Slot(t + 1500 + Jitter(2000), bundle.router, ev));
        V2LagState(bundle.name, true,
                   Slot(t + down_for + 1500 + Jitter(2000), bundle.router,
                        ev));
      }
      t += rng_.UniformInt(20, 90) * kMsPerSecond;
    }
  }

  // A burst of VPN adjacency changes on one router (Table 3 shape):
  // many VRF neighbors go down with assorted reasons, then recover.
  void BgpVpnFlap(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    std::vector<const net::BgpSession*> vpn;
    for (const net::SessionId sid : topo_.routers[router].sessions) {
      const net::BgpSession& s = topo_.sessions[sid];
      if (!s.vrf.empty()) vpn.push_back(&s);
    }
    if (vpn.empty()) return;
    const int ev = NewEvent("bgp-vpn-flap", router);
    const std::size_t count =
        1 + rng_.Index(std::min<std::size_t>(vpn.size(), 12));
    rng_.Shuffle(vpn);
    for (std::size_t i = 0; i < count; ++i) {
      const net::BgpSession& s = *vpn[i];
      const auto reason = static_cast<BgpDownReason>(rng_.UniformInt(0, 3));
      const TimeMs down_at = t0 + Jitter(30 * kMsPerSecond);
      const TimeMs up_at = down_at + rng_.UniformInt(30, 300) * kMsPerSecond;
      if (V1()) {
        V1BgpVpnAdj(s.neighbor_ip_of_a, s.vrf, false, reason,
                    Slot(down_at, router, ev));
        V1BgpVpnAdj(s.neighbor_ip_of_a, s.vrf, true, reason,
                    Slot(up_at, router, ev));
      } else {
        V2BgpSessionState(s.neighbor_ip_of_a, false,
                          Slot(down_at, router, ev));
        V2BgpSessionState(s.neighbor_ip_of_a, true, Slot(up_at, router, ev));
      }
    }
  }

  void IbgpFlap(TimeMs t0) {
    std::vector<const net::BgpSession*> ibgp;
    for (const net::BgpSession& s : topo_.sessions) {
      if (s.vrf.empty()) ibgp.push_back(&s);
    }
    if (ibgp.empty()) return;
    const net::BgpSession& s = *rng_.Pick(ibgp);
    const int ev = NewEvent("ibgp-flap", s.router_a);
    const TimeMs down_for = rng_.UniformInt(10, 55) * kMsPerSecond;
    if (V1()) {
      V1BgpAdj(s.neighbor_ip_of_a, false, BgpDownReason::kNotificationSent,
               Slot(t0 + Jitter(500), s.router_a, ev));
      V1BgpAdj(s.neighbor_ip_of_b, false,
               BgpDownReason::kNotificationReceived,
               Slot(t0 + Jitter(500), s.router_b, ev));
      V1BgpAdj(s.neighbor_ip_of_a, true, BgpDownReason::kPeerClosed,
               Slot(t0 + down_for, s.router_a, ev));
      V1BgpAdj(s.neighbor_ip_of_b, true, BgpDownReason::kPeerClosed,
               Slot(t0 + down_for + Jitter(500), s.router_b, ev));
    } else {
      V2BgpSessionState(s.neighbor_ip_of_a, false,
                        Slot(t0 + Jitter(500), s.router_a, ev));
      V2BgpSessionState(s.neighbor_ip_of_b, false,
                        Slot(t0 + Jitter(500), s.router_b, ev));
      V2BgpSessionState(s.neighbor_ip_of_a, true,
                        Slot(t0 + down_for, s.router_a, ev));
      V2BgpSessionState(s.neighbor_ip_of_b, true,
                        Slot(t0 + down_for + Jitter(500), s.router_b, ev));
    }
  }

  void CpuSpike(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const int ev = NewEvent("cpu-spike", router);
    const int cycles = static_cast<int>(rng_.UniformInt(1, 5));
    TimeMs t = t0;
    for (int k = 0; k < cycles; ++k) {
      const int total = static_cast<int>(rng_.UniformInt(80, 99));
      const int intr = static_cast<int>(rng_.UniformInt(0, 3));
      if (V1()) {
        Emit(t, router,
             V1CpuRising(total, intr,
                         static_cast<int>(rng_.UniformInt(2, 400)),
                         static_cast<int>(rng_.UniformInt(40, 80)),
                         static_cast<int>(rng_.UniformInt(2, 400)),
                         static_cast<int>(rng_.UniformInt(3, 20)),
                         static_cast<int>(rng_.UniformInt(2, 400)),
                         static_cast<int>(rng_.UniformInt(1, 5))),
             ev);
      } else {
        V2CpuUsage(true, total, Slot(t, router, ev));
      }
      const TimeMs hold = rng_.UniformInt(10, 55) * kMsPerSecond;
      const int low = static_cast<int>(rng_.UniformInt(15, 40));
      if (V1()) {
        V1CpuFalling(low, intr, Slot(t + hold, router, ev));
      } else {
        V2CpuUsage(false, low, Slot(t + hold, router, ev));
      }
      t += hold + rng_.UniformInt(60, 900) * kMsPerSecond;
    }
  }

  // Long periodic train of MD5 authentication failures from one scanner
  // (the paper's Fig. 5).  The source address is intentionally absent from
  // every router config: the location extractor must not trust it.
  void BadAuthScan(TimeMs t0) {
    const RouterId router = PickRouter();
    const int ev = NewEvent("bad-auth-scan", router);
    const std::string src = ExternalIp(rng_);
    const TimeMs period = rng_.UniformInt(15, 60) * kMsPerSecond;
    const TimeMs duration = static_cast<TimeMs>(
        rng_.UniformInt(2, 12) * kMsPerHour * (1.0 + 3.0 * WeightOf(router)));
    const std::string dst = topo_.routers[router].loopback_ip;
    for (TimeMs t = t0; t < t0 + duration;) {
      if (V1()) {
        V1TcpBadAuth(src, static_cast<int>(rng_.UniformInt(1024, 65535)),
                     dst, Slot(t, router, ev));
      } else {
        V2SnmpAuthFail(src, Slot(t, router, ev));
      }
      t += static_cast<TimeMs>(period * (0.9 + 0.2 * rng_.UniformReal()));
    }
  }

  // Brute-force login attempts; SSH and FTP probes arrive as a pair tens of
  // seconds apart — the association the paper observed in dataset B at
  // W = 30-40 s.
  void LoginScan(TimeMs t0) {
    const RouterId router = PickRouter();
    const int ev = NewEvent("login-scan", router);
    const std::string src = ExternalIp(rng_);
    const int rounds = static_cast<int>(
        rng_.UniformInt(20, 60) * (1.0 + 2.0 * WeightOf(router)));
    TimeMs t = t0;
    for (int k = 0; k < rounds; ++k) {
      const std::string_view user = rng_.Pick(users_);
      if (V1()) {
        V1LoginFailed(user, src, Slot(t, router, ev));
        if (rng_.Bernoulli(0.8)) {
          V1SnmpAuthFail(
              src, Slot(t + rng_.UniformInt(10, 30) * kMsPerSecond, router,
                        ev));
        }
      } else {
        V2SshLoginFailed(user, src, Slot(t, router, ev));
        if (rng_.Bernoulli(0.85)) {
          V2FtpLoginFailed(
              user, src,
              Slot(t + rng_.UniformInt(30, 40) * kMsPerSecond, router, ev));
        }
      }
      t += rng_.UniformInt(60, 300) * kMsPerSecond;
    }
  }

  void ConfigChange(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const int ev = NewEvent("config-change", router);
    const std::string src = MgmtIp(rng_);
    const std::string_view user = rng_.Pick(users_);
    if (V1()) {
      V1ConfigI(user, src, Slot(t0, router, ev));
    } else {
      V2ConfigChange(user, src, Slot(t0, router, ev));
    }
  }

  void EnvAlarm(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const int ev = NewEvent("env-alarm", router);
    const int sensor = static_cast<int>(rng_.UniformInt(1, 8));
    const int repeats = static_cast<int>(rng_.UniformInt(1, 4));
    TimeMs t = t0;
    for (int k = 0; k < repeats; ++k) {
      if (V1()) {
        V1EnvTemp(sensor, static_cast<int>(rng_.UniformInt(55, 75)),
                  Slot(t, router, ev));
      } else {
        V2EnvTemp(static_cast<int>(rng_.UniformInt(55, 75)),
                  Slot(t, router, ev));
      }
      // An overheating chassis re-raises the fan alarm with each reading.
      if (rng_.Bernoulli(0.9)) {
        const TimeMs fan_at = t + rng_.UniformInt(2, 20) * kMsPerSecond;
        if (V1()) {
          V1FanFail(Slot(fan_at, router, ev));
        } else {
          V2FanFail(Slot(fan_at, router, ev));
        }
      }
      t += rng_.UniformInt(120, 600) * kMsPerSecond;
    }
  }

  // Online insertion/removal of a line card (maintenance activity): a
  // removed/inserted message pair seconds apart.
  void CardOir(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const int ev = NewEvent("card-oir", router);
    char slot[16];
    std::snprintf(slot, sizeof(slot), "%d/0",
                  static_cast<int>(rng_.UniformInt(
                      0, topo_.routers[router].num_slots - 1)));
    if (V1()) {
      V1OirCard(slot, true, Slot(t0, router, ev));
    } else {
      V2OirCard(slot, true, Slot(t0, router, ev));
    }
    const TimeMs back_at = t0 + rng_.UniformInt(5, 30) * kMsPerSecond;
    if (V1()) {
      V1OirCard(slot, false, Slot(back_at, router, ev));
    } else {
      V2OirCard(slot, false, Slot(back_at, router, ev));
    }
  }

  void SapChurn(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const net::Router& r = topo_.routers[router];
    if (r.phys_ifs.empty()) return;
    const PhysIfId pid = rng_.Pick(r.phys_ifs);
    const net::PhysIf& phys = topo_.phys_ifs[pid];
    const int ev = NewEvent("sap-churn", router);
    const int flaps = static_cast<int>(rng_.UniformInt(1, 4));
    TimeMs t = t0;
    for (int k = 0; k < flaps; ++k) {
      const TimeMs down_for = rng_.UniformInt(2, 10) * kMsPerSecond;
      V2PortState(phys.name, false, Slot(t, router, ev));
      V2SapPortChange(phys.name, Slot(t + 500 + Jitter(1000), router, ev));
      const int services = static_cast<int>(rng_.UniformInt(2, 8));
      for (int s = 0; s < services; ++s) {
        const int id = static_cast<int>(rng_.UniformInt(1000, 1200));
        V2ServiceState(id, false, Slot(t + 1000 + Jitter(3000), router, ev));
        V2ServiceState(id, true,
                       Slot(t + down_for + 1000 + Jitter(3000), router, ev));
      }
      V2PortState(phys.name, true, Slot(t + down_for, router, ev));
      V2SapPortChange(phys.name,
                      Slot(t + down_for + 500 + Jitter(1000), router, ev));
      t += rng_.UniformInt(30, 120) * kMsPerSecond;
    }
  }

  void ServiceChurn(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const int ev = NewEvent("service-churn", router);
    const int n = static_cast<int>(rng_.UniformInt(3, 20));
    TimeMs t = t0;
    for (int k = 0; k < n; ++k) {
      const int id = static_cast<int>(rng_.UniformInt(1000, 1200));
      V2ServiceState(id, false, Slot(t, router, ev));
      V2ServiceState(
          id, true,
          Slot(t + rng_.UniformInt(5, 60) * kMsPerSecond, router, ev));
      t += rng_.UniformInt(10, 60) * kMsPerSecond;
    }
  }

  // §6.1: the secondary FRR path has silently failed to establish and
  // retries every five minutes; when the primary link later fails, the PIM
  // neighbor session is lost — a complex event spanning many routers,
  // protocols and layers that should end up in ONE digest.
  void PimDualFailure(TimeMs t0) {
    // Need a path of >= 3 hops whose head terminates a link.
    const net::Path* path = nullptr;
    for (const net::Path& p : topo_.paths) {
      if (p.hops.size() >= 3) {
        path = &p;
        break;
      }
    }
    if (path == nullptr || topo_.links.empty()) return;
    const RouterId head = path->hops.front();
    // Primary link: any link at the head router not on the secondary path.
    const net::Link* primary = nullptr;
    for (const net::Link& l : topo_.links) {
      const bool at_head = l.router_a == head || l.router_b == head;
      const bool on_path = std::find(path->links.begin(), path->links.end(),
                                     l.id) != path->links.end();
      if (at_head && !on_path) {
        primary = &l;
        break;
      }
    }
    if (primary == nullptr) return;
    const int ev = NewEvent("pim-dual-failure", head);

    // Phase 1: secondary-path setup retries, every 5 minutes.  The head
    // logs the retry and the path staying down; mid-path routers log the
    // failed setup within a second of the head (they reject the same
    // signalling attempt).
    const TimeMs retry_span = rng_.UniformInt(1, 3) * kMsPerHour;
    const TimeMs fail_at = t0 + retry_span;
    for (TimeMs t = t0; t < fail_at + 10 * kMsPerMinute;
         t += 5 * kMsPerMinute) {
      // Attempt fails (path down), then the retry is scheduled.
      V2LspState(path->name, false, Slot(t + Jitter(400), head, ev));
      for (std::size_t h = 1; h < path->hops.size(); ++h) {
        if (!rng_.Bernoulli(0.5)) continue;
        V2LspState(path->name, false,
                   Slot(t + Jitter(400), path->hops[h], ev));
      }
      V2LspRetry(path->name, 300, Slot(t + 1500 + Jitter(800), head, ev));
    }

    // Phase 2: the primary link fails; FRR immediately attempts the
    // secondary path (which is still down), and PIM drops.
    const RouterId peer = topo_.LinkPeer(primary->id, head);
    const TimeMs recover_at = fail_at + rng_.UniformInt(10, 60) * kMsPerMinute;
    EmitIfFlapSide(ev, head, topo_.LinkEnd(primary->id, head), fail_at, false,
                   peer);
    EmitIfFlapSide(ev, peer, topo_.LinkEnd(primary->id, peer), fail_at, false,
                   head);
    V2LspRetry(path->name, 300, Slot(fail_at + 1500 + Jitter(500), head, ev));
    V2LspState(path->name, false,
               Slot(fail_at + 2500 + Jitter(800), head, ev));
    const net::LogicalIfId head_lid =
        topo_.PrimaryLogical(topo_.LinkEnd(primary->id, head));
    const net::LogicalIfId peer_lid =
        topo_.PrimaryLogical(topo_.LinkEnd(primary->id, peer));
    if (head_lid != kInvalidId && peer_lid != kInvalidId) {
      V2PimNeighborLoss(topo_.logical_ifs[peer_lid].ip,
                        topo_.logical_ifs[head_lid].name,
                        Slot(fail_at + 2000 + Jitter(3000), head, ev));
      V2PimNeighborLoss(topo_.logical_ifs[head_lid].ip,
                        topo_.logical_ifs[peer_lid].name,
                        Slot(fail_at + 2000 + Jitter(3000), peer, ev));
    }
    // Services and downstream VHOs react along the path.
    for (std::size_t i = 0; i < path->hops.size(); ++i) {
      const RouterId hop = path->hops[i];
      if (rng_.Bernoulli(0.7)) {
        Emit(fail_at + 4000 + Jitter(20000), hop,
             V2ServiceState(static_cast<int>(rng_.UniformInt(1000, 1200)),
                            false), ev);
      }
    }
    EmitIbgpOverLink(ev, *primary, fail_at + 1500, recover_at - fail_at);

    // Recovery.
    EmitIfFlapSide(ev, head, topo_.LinkEnd(primary->id, head), recover_at,
                   true, peer);
    EmitIfFlapSide(ev, peer, topo_.LinkEnd(primary->id, peer), recover_at,
                   true, head);
    if (head_lid != kInvalidId && peer_lid != kInvalidId) {
      V2PimNeighborUp(topo_.logical_ifs[peer_lid].ip,
                      topo_.logical_ifs[head_lid].name,
                      Slot(recover_at + 2000 + Jitter(3000), head, ev));
    }
    V2LspState(path->name, true, Slot(recover_at + 10000, head, ev));
  }

  // Planned maintenance: an operator saves config, pulls a line card
  // (taking its links down), reseats it, and saves config again — a
  // composite event mixing human and hardware messages.
  void MaintenanceWindow(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const net::Router& r = topo_.routers[router];
    const int ev = NewEvent("maintenance-window", router);
    const std::string_view user = rng_.Pick(users_);
    const std::string src = MgmtIp(rng_);
    if (V1()) {
      V1ConfigI(user, src, Slot(t0, router, ev));
    } else {
      V2ConfigChange(user, src, Slot(t0, router, ev));
    }
    const int slot = static_cast<int>(rng_.UniformInt(0, r.num_slots - 1));
    char slot_pos[16];
    std::snprintf(slot_pos, sizeof(slot_pos), "%d/0", slot);
    const TimeMs pull_at = t0 + rng_.UniformInt(30, 180) * kMsPerSecond;
    const TimeMs reseat_at =
        pull_at + rng_.UniformInt(20, 90) * kMsPerSecond;
    if (V1()) {
      V1OirCard(slot_pos, true, Slot(pull_at, router, ev));
    } else {
      V2OirCard(slot_pos, true, Slot(pull_at, router, ev));
    }
    // Links terminating in the pulled slot drop and return.
    for (const PhysIfId pid : r.phys_ifs) {
      const net::PhysIf& phys = topo_.phys_ifs[pid];
      if (phys.slot != slot || !phys.link.has_value()) continue;
      const RouterId peer = topo_.LinkPeer(*phys.link, router);
      EmitIfFlapSide(ev, router, pid, pull_at + 1000 + Jitter(2000), false,
                     peer);
      EmitIfFlapSide(ev, peer, topo_.LinkEnd(*phys.link, peer),
                     pull_at + 1000 + Jitter(2000), false, router);
      EmitIfFlapSide(ev, router, pid, reseat_at + 2000 + Jitter(3000), true,
                     peer);
      EmitIfFlapSide(ev, peer, topo_.LinkEnd(*phys.link, peer),
                     reseat_at + 2000 + Jitter(3000), true, router);
    }
    if (V1()) {
      V1OirCard(slot_pos, false, Slot(reseat_at, router, ev));
    } else {
      V2OirCard(slot_pos, false, Slot(reseat_at, router, ev));
    }
    const TimeMs save_at =
        reseat_at + rng_.UniformInt(30, 120) * kMsPerSecond;
    if (V1()) {
      V1ConfigI(user, src, Slot(save_at, router, ev));
    } else {
      V2ConfigChange(user, src, Slot(save_at, router, ev));
    }
  }

  // A route-processor switchover resets control-plane adjacencies across
  // the whole chassis — a genuinely router-scoped event.
  void RpSwitchover(TimeMs t0) {
    const RouterId router = PickRouterUniform();
    const int ev = NewEvent("rp-switchover", router);
    if (V1()) {
      V1Switchover(Slot(t0, router, ev));
    } else {
      V2Switchover(Slot(t0, router, ev));
    }
    // BGP sessions reset...
    for (const net::SessionId sid : topo_.routers[router].sessions) {
      const net::BgpSession& s = topo_.sessions[sid];
      if (!rng_.Bernoulli(0.6)) continue;
      const bool is_a = s.router_a == router;
      const std::string& neighbor =
          is_a ? s.neighbor_ip_of_a : s.neighbor_ip_of_b;
      const TimeMs down_at = t0 + 2000 + Jitter(10000);
      const TimeMs up_at = down_at + rng_.UniformInt(15, 45) * kMsPerSecond;
      if (V1()) {
        if (s.vrf.empty()) {
          V1BgpAdj(neighbor, false, BgpDownReason::kPeerClosed,
                   Slot(down_at, router, ev));
          V1BgpAdj(neighbor, true, BgpDownReason::kPeerClosed,
                   Slot(up_at, router, ev));
        } else {
          V1BgpVpnAdj(neighbor, s.vrf, false, BgpDownReason::kPeerClosed,
                      Slot(down_at, router, ev));
          V1BgpVpnAdj(neighbor, s.vrf, true, BgpDownReason::kPeerClosed,
                      Slot(up_at, router, ev));
        }
      } else {
        V2BgpSessionState(neighbor, false, Slot(down_at, router, ev));
        V2BgpSessionState(neighbor, true, Slot(up_at, router, ev));
      }
    }
    // ...and the CPU spikes while routes reconverge.
    if (rng_.Bernoulli(0.8)) {
      const TimeMs spike_at = t0 + 5000 + Jitter(10000);
      if (V1()) {
        V1CpuRising(static_cast<int>(rng_.UniformInt(85, 99)), 2, 7, 70, 12,
                    9, 3, 4, Slot(spike_at, router, ev));
        // Two draws in one statement — keep the value form (see Slot()).
        Emit(spike_at + rng_.UniformInt(20, 50) * kMsPerSecond, router,
             V1CpuFalling(static_cast<int>(rng_.UniformInt(15, 40)), 1),
             ev);
      } else {
        V2CpuUsage(true, static_cast<int>(rng_.UniformInt(85, 99)),
                   Slot(spike_at, router, ev));
        Emit(spike_at + rng_.UniformInt(20, 50) * kMsPerSecond, router,
             V2CpuUsage(false, static_cast<int>(rng_.UniformInt(15, 40))),
             ev);
      }
    }
  }

  // CDP re-announces a duplex mismatch on a timer for hours.
  void DuplexTrain(TimeMs t0) {
    const RouterId router = PickRouter();
    const net::Router& r = topo_.routers[router];
    if (r.phys_ifs.empty()) return;
    const net::PhysIf& phys = topo_.phys_ifs[rng_.Pick(r.phys_ifs)];
    const int ev = NewEvent("duplex-mismatch", router);
    const TimeMs duration = static_cast<TimeMs>(
        rng_.UniformInt(1, 8) * kMsPerHour * (1.0 + 3.0 * WeightOf(router)));
    const TimeMs period = 5 * kMsPerMinute;
    for (TimeMs t = t0; t < t0 + duration;) {
      V1DuplexMismatch(phys.name, Slot(t, router, ev));
      t += static_cast<TimeMs>(period * (0.95 + 0.1 * rng_.UniformReal()));
    }
  }

  // Hourly housekeeping on every router (NTP / time sync) — pure timer
  // messages with no service meaning.
  void TimerNoise(TimeMs day_start) {
    const double per_day = spec_.rates.timer_noise_per_router_day;
    if (per_day <= 0) return;
    for (const net::Router& r : topo_.routers) {
      const double rate = per_day * (0.5 + 1.5 * WeightOf(r.id));
      const TimeMs period = static_cast<TimeMs>(kMsPerDay / rate);
      TimeMs t = day_start + Jitter(period);
      while (t < day_start + kMsPerDay) {
        if (V1()) {
          V1NtpSync("172.30.255.1", Slot(t, r.id, -1));
        } else {
          V2TimeSync("172.30.255.1", Slot(t, r.id, -1));
        }
        t += static_cast<TimeMs>(period * (0.97 + 0.06 * rng_.UniformReal()));
      }
    }
  }

  void RandomNoise(TimeMs day_start) {
    const std::int64_t n = rng_.Poisson(spec_.rates.random_noise_per_day);
    for (std::int64_t i = 0; i < n; ++i) {
      const TimeMs t = day_start + rng_.UniformInt(0, kMsPerDay - 1);
      const RouterId router = PickRouter();
      if (rng_.Bernoulli(0.4)) {
        const std::string src = ExternalIp(rng_);
        if (V1()) {
          V1SnmpAuthFail(src, Slot(t, router, -1));
        } else {
          V2SnmpAuthFail(src, Slot(t, router, -1));
        }
      } else {
        // Long-tail message types.
        const int variant =
            static_cast<int>(rng_.UniformInt(0, kRareNoiseVariants - 1));
        RareNoise(V1(), variant, rng_.UniformInt(1, 500000),
                  Slot(t, router, -1));
      }
    }
  }

  // ---- finalization -----------------------------------------------------

  Dataset Finalize(TimeMs window_start) {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Pending& a, const Pending& b) {
                       return a.t < b.t;
                     });
    Dataset ds;
    ds.name = spec_.name;
    ds.topo = std::move(topo_);
    ds.configs = net::WriteAllConfigs(ds.topo);
    ds.epoch = window_start;
    ds.num_days = days_;
    ds.ground_truth = std::move(events_);
    ds.messages.reserve(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      Pending& p = pending_[i];
      syslog::SyslogRecord rec;
      rec.time = p.t;
      rec.router = ds.topo.routers[p.router].name;
      rec.code = std::move(p.msg.code);
      rec.detail = std::move(p.msg.detail);
      ++ds.gt_templates[p.msg.gt_template];
      ds.messages.push_back(std::move(rec));
      if (p.event_id >= 0) {
        GtEvent& ev = ds.ground_truth[static_cast<std::size_t>(p.event_id)];
        ev.message_indices.push_back(i);
        if (std::find(ev.routers.begin(), ev.routers.end(), p.router) ==
            ev.routers.end()) {
          ev.routers.push_back(p.router);
        }
      }
    }
    // Event time ranges; drop events that emitted nothing.
    std::vector<GtEvent> kept;
    for (GtEvent& ev : ds.ground_truth) {
      if (ev.message_indices.empty()) continue;
      ev.start = ds.messages[ev.message_indices.front()].time;
      ev.end = ds.messages[ev.message_indices.back()].time;
      ev.id = static_cast<int>(kept.size());
      kept.push_back(std::move(ev));
    }
    ds.ground_truth = std::move(kept);
    MakeTickets(ds);
    return ds;
  }

  // Synthesizes operations trouble tickets for impactful events (§5.3).
  void MakeTickets(Dataset& ds) {
    int case_id = 1;
    for (const GtEvent& ev : ds.ground_truth) {
      const bool impactful =
          ev.kind == "pim-dual-failure" || ev.kind == "controller-flap" ||
          ((ev.kind == "link-flap" || ev.kind == "bundle-flap" ||
            ev.kind == "sap-churn" || ev.kind == "ibgp-flap") &&
           ev.message_indices.size() >= 8);
      if (!impactful) continue;
      if (!rng_.Bernoulli(0.35)) continue;  // ops does not ticket everything
      TroubleTicket ticket;
      ticket.case_id = case_id++;
      ticket.gt_event_id = ev.id;
      ticket.created = ev.start + rng_.UniformInt(1, 10) * kMsPerMinute;
      ticket.state = ev.state;
      ticket.update_count =
          1 + static_cast<int>(rng_.Poisson(
                  std::min<double>(ev.message_indices.size() / 10.0, 12.0)));
      ds.tickets.push_back(std::move(ticket));
    }
  }

  DatasetSpec spec_;
  int day0_;
  int days_;
  Rng rng_;
  Topology topo_;
  std::vector<double> router_weight_;
  std::vector<Pending> pending_;
  std::vector<GtEvent> events_;
  std::vector<std::string_view> users_{kUsers.begin(), kUsers.end()};
};

}  // namespace

Dataset GenerateDataset(const DatasetSpec& spec, int day0, int days,
                        std::uint64_t seed) {
  Generator gen(spec, day0, days, seed);
  return gen.Run();
}

}  // namespace sld::sim
