// Vendor-specific syslog message constructors.
//
// Each function renders one primitive message the way the corresponding
// router OS would "printf" it (V1: IOS-like, the paper's Table 1 rows 1-4;
// V2: TiMOS-like, rows 5-7), and also reports the message's *ground-truth
// template*: the error code plus the detail text with every variable token
// masked as "*", whitespace-canonicalized.  The generator collects these
// ground-truth templates so §5.2.1's template-accuracy experiment can score
// the learner against a known answer — something the paper could only do
// with hand-coded vendor knowledge.
#pragma once

#include <string>
#include <string_view>

namespace sld::sim {

// A rendered message plus its ground-truth template.
struct Msg {
  std::string code;
  std::string detail;
  std::string gt_template;  // "<code> <masked detail>"
};

// Every constructor below comes in two forms:
//
//   Msg  V1LinkUpDown(args...);            // value form
//   void V1LinkUpDown(args..., Msg* out);  // appending form
//
// The appending form clears and refills `out`'s three strings in place,
// reusing their capacity — zero heap allocations per message once the
// fields have grown to steady state.  That is the contract slgen's
// wire-rate render loop and bench_e2e's allocation audit depend on; the
// value form is a thin wrapper over it, so both produce identical bytes.

// Reasons a BGP adjacency goes down (the sub-types of the paper's Table 4).
enum class BgpDownReason : int {
  kInterfaceFlap = 0,
  kNotificationSent,
  kNotificationReceived,
  kPeerClosed,
};
std::string_view BgpDownReasonText(BgpDownReason r) noexcept;

// ---- Vendor V1 (IOS-like) ----------------------------------------------
Msg V1LinkUpDown(std::string_view ifname, bool up);
void V1LinkUpDown(std::string_view ifname, bool up, Msg* out);
Msg V1LineProtoUpDown(std::string_view ifname, bool up);
void V1LineProtoUpDown(std::string_view ifname, bool up, Msg* out);
Msg V1ControllerUpDown(std::string_view controller, bool up);
void V1ControllerUpDown(std::string_view controller, bool up, Msg* out);
Msg V1BgpVpnAdj(std::string_view neighbor_ip, std::string_view vrf, bool up,
                BgpDownReason reason);
void V1BgpVpnAdj(std::string_view neighbor_ip, std::string_view vrf, bool up,
                 BgpDownReason reason, Msg* out);
Msg V1BgpAdj(std::string_view neighbor_ip, bool up, BgpDownReason reason);
void V1BgpAdj(std::string_view neighbor_ip, bool up, BgpDownReason reason,
              Msg* out);
Msg V1OspfAdj(std::string_view neighbor_ip, std::string_view ifname, bool up);
void V1OspfAdj(std::string_view neighbor_ip, std::string_view ifname, bool up,
               Msg* out);
Msg V1PimNbrChange(std::string_view neighbor_ip, std::string_view ifname,
                   bool up);
void V1PimNbrChange(std::string_view neighbor_ip, std::string_view ifname,
                    bool up, Msg* out);
Msg V1CpuRising(int total_pct, int intr_pct, int pid1, int u1, int pid2,
                int u2, int pid3, int u3);
void V1CpuRising(int total_pct, int intr_pct, int pid1, int u1, int pid2,
                 int u2, int pid3, int u3, Msg* out);
Msg V1CpuFalling(int total_pct, int intr_pct);
void V1CpuFalling(int total_pct, int intr_pct, Msg* out);
Msg V1TcpBadAuth(std::string_view src_ip, int src_port,
                 std::string_view dst_ip);
void V1TcpBadAuth(std::string_view src_ip, int src_port,
                  std::string_view dst_ip, Msg* out);
Msg V1LoginFailed(std::string_view user, std::string_view src_ip);
void V1LoginFailed(std::string_view user, std::string_view src_ip, Msg* out);
Msg V1SnmpAuthFail(std::string_view src_ip);
void V1SnmpAuthFail(std::string_view src_ip, Msg* out);
Msg V1ConfigI(std::string_view user, std::string_view src_ip);
void V1ConfigI(std::string_view user, std::string_view src_ip, Msg* out);
Msg V1EnvTemp(int sensor, int celsius);
void V1EnvTemp(int sensor, int celsius, Msg* out);
Msg V1MplsTeLsp(std::string_view path, bool up);
void V1MplsTeLsp(std::string_view path, bool up, Msg* out);
Msg V1NtpSync(std::string_view server_ip);
void V1NtpSync(std::string_view server_ip, Msg* out);
Msg V1DuplexMismatch(std::string_view ifname);
void V1DuplexMismatch(std::string_view ifname, Msg* out);
Msg V1FanFail();
void V1FanFail(Msg* out);
Msg V1Switchover();
void V1Switchover(Msg* out);
Msg V1OirCard(std::string_view slot_pos, bool removed);
void V1OirCard(std::string_view slot_pos, bool removed, Msg* out);

// ---- Vendor V2 (TiMOS-like) --------------------------------------------
Msg V2LinkState(std::string_view ifname, bool up);
void V2LinkState(std::string_view ifname, bool up, Msg* out);
Msg V2PortState(std::string_view port, bool up);
void V2PortState(std::string_view port, bool up, Msg* out);
Msg V2SapPortChange(std::string_view port);
void V2SapPortChange(std::string_view port, Msg* out);
Msg V2BgpSessionState(std::string_view neighbor_ip, bool up);
void V2BgpSessionState(std::string_view neighbor_ip, bool up, Msg* out);
Msg V2PimNeighborLoss(std::string_view neighbor_ip, std::string_view ifname);
void V2PimNeighborLoss(std::string_view neighbor_ip, std::string_view ifname,
                       Msg* out);
Msg V2PimNeighborUp(std::string_view neighbor_ip, std::string_view ifname);
void V2PimNeighborUp(std::string_view neighbor_ip, std::string_view ifname,
                     Msg* out);
Msg V2LspState(std::string_view path, bool up);
void V2LspState(std::string_view path, bool up, Msg* out);
Msg V2LspRetry(std::string_view path, int retry_seconds);
void V2LspRetry(std::string_view path, int retry_seconds, Msg* out);
Msg V2LagState(std::string_view lag, bool up);
void V2LagState(std::string_view lag, bool up, Msg* out);
Msg V2CpuUsage(bool high, int pct);
void V2CpuUsage(bool high, int pct, Msg* out);
Msg V2SshLoginFailed(std::string_view user, std::string_view src_ip);
void V2SshLoginFailed(std::string_view user, std::string_view src_ip,
                      Msg* out);
Msg V2FtpLoginFailed(std::string_view user, std::string_view src_ip);
void V2FtpLoginFailed(std::string_view user, std::string_view src_ip,
                      Msg* out);
Msg V2ServiceState(int service_id, bool up);
void V2ServiceState(int service_id, bool up, Msg* out);
Msg V2TimeSync(std::string_view server_ip);
void V2TimeSync(std::string_view server_ip, Msg* out);
Msg V2SnmpAuthFail(std::string_view src_ip);
void V2SnmpAuthFail(std::string_view src_ip, Msg* out);
Msg V2ConfigChange(std::string_view user, std::string_view src_ip);
void V2ConfigChange(std::string_view user, std::string_view src_ip, Msg* out);
Msg V2EnvTemp(int celsius);
void V2EnvTemp(int celsius, Msg* out);
Msg V2FanFail();
void V2FanFail(Msg* out);
Msg V2OirCard(std::string_view slot_pos, bool removed);
void V2OirCard(std::string_view slot_pos, bool removed, Msg* out);
Msg V2Switchover();
void V2Switchover(Msg* out);

// ---- Long-tail noise ------------------------------------------------------
// Real router syslog has hundreds of message types, most of them rare.
// RareNoise synthesizes one of kRareNoiseVariants distinct low-volume
// message types (per vendor style) with one numeric variable field, so the
// type-support distribution has the heavy tail Table 5 measures.
inline constexpr int kRareNoiseVariants = 50;
Msg RareNoise(bool v1_style, int variant, long long value);
void RareNoise(bool v1_style, int variant, long long value, Msg* out);

}  // namespace sld::sim
