// Workload description: which network conditions occur, how often, and
// from which day onward.
//
// Rates are expressed per network per day and drawn from Poisson
// distributions day by day.  `from_day` lets a condition first appear part
// way through the observation period — modelling software upgrades and
// feature rollouts that introduce new message (co-)occurrence patterns,
// which is what makes the paper's weekly rule-base evolution (Figs. 8-9)
// grow before it stabilizes.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "net/topology.h"

namespace sld::sim {

struct Rate {
  double per_day = 0.0;
  int from_day = 0;  // first day (0-based, absolute) this condition exists
};

struct ScenarioRates {
  Rate link_flap{20, 0};
  Rate controller_flap{4, 0};       // V1 networks only
  Rate bundle_flap{3, 0};
  Rate bgp_vpn_flap{25, 0};         // V1 networks only
  Rate ibgp_flap{4, 0};
  Rate cpu_spike{8, 0};
  Rate bad_auth_scan{3, 0};         // long periodic trains (Fig. 5)
  Rate login_scan{6, 0};
  Rate config_change{30, 0};
  Rate env_alarm{1, 0};
  Rate card_oir{5, 0};  // line-card insertion/removal maintenance
  Rate maintenance_window{1.5, 0};  // planned work: config + OIR + links
  Rate rp_switchover{0.5, 0};       // route-processor failover
  Rate sap_churn{0, 0};             // V2 networks only
  Rate service_churn{0, 0};         // V2 networks only
  Rate pim_dual_failure{0, 0};      // V2 networks only (§6.1)
  Rate duplex_mismatch{2, 0};       // V1 periodic nuisance
  // Timer-driven housekeeping messages per router per day (NTP/time sync).
  double timer_noise_per_router_day = 24;
  // Uncorrelated one-off informational messages per network per day.
  double random_noise_per_day = 150;
};

// A complete dataset recipe: the network plus its workload.
struct DatasetSpec {
  std::string name;
  net::TopologyParams topo;
  ScenarioRates rates;
};

// Presets mirroring the paper's two networks.
// Dataset A: tier-1 ISP backbone, vendor V1 routers.
DatasetSpec DatasetASpec();
// Dataset B: nationwide IPTV backbone, vendor V2 routers.
DatasetSpec DatasetBSpec();

// The first midnight of the generated period for both presets
// (2009-09-01, matching the paper's three-month learning window).
TimeMs DatasetEpoch() noexcept;

}  // namespace sld::sim
