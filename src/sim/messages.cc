#include "sim/messages.h"

#include <array>
#include <cctype>
#include <cstdio>

namespace sld::sim {
namespace {

std::string Fmt(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

Msg Make(std::string code, std::string detail, std::string masked) {
  std::string tmpl = code;
  tmpl += ' ';
  tmpl += masked;
  return {std::move(code), std::move(detail), std::move(tmpl)};
}

const char* UpDown(bool up) { return up ? "up" : "down"; }

}  // namespace

std::string_view BgpDownReasonText(BgpDownReason r) noexcept {
  switch (r) {
    case BgpDownReason::kInterfaceFlap:
      return "Interface flap";
    case BgpDownReason::kNotificationSent:
      return "BGP Notification sent";
    case BgpDownReason::kNotificationReceived:
      return "BGP Notification received";
    case BgpDownReason::kPeerClosed:
      return "Peer closed the session";
  }
  return "";
}

// ---- V1 -----------------------------------------------------------------

Msg V1LinkUpDown(std::string_view ifname, bool up) {
  return Make("LINK-3-UPDOWN",
              Fmt("Interface %.*s, changed state to %s",
                  static_cast<int>(ifname.size()), ifname.data(), UpDown(up)),
              Fmt("Interface * changed state to %s", UpDown(up)));
}

Msg V1LineProtoUpDown(std::string_view ifname, bool up) {
  return Make(
      "LINEPROTO-5-UPDOWN",
      Fmt("Line protocol on Interface %.*s, changed state to %s",
          static_cast<int>(ifname.size()), ifname.data(), UpDown(up)),
      Fmt("Line protocol on Interface * changed state to %s", UpDown(up)));
}

Msg V1ControllerUpDown(std::string_view controller, bool up) {
  // `controller` is e.g. "T1 0/3" — the position token is the variable.
  return Make("CONTROLLER-5-UPDOWN",
              Fmt("Controller %.*s, changed state to %s",
                  static_cast<int>(controller.size()), controller.data(),
                  UpDown(up)),
              Fmt("Controller T1 * changed state to %s", UpDown(up)));
}

Msg V1BgpVpnAdj(std::string_view neighbor_ip, std::string_view vrf, bool up,
                BgpDownReason reason) {
  if (up) {
    return Make("BGP-5-ADJCHANGE",
                Fmt("neighbor %.*s vpn vrf %.*s Up",
                    static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                    static_cast<int>(vrf.size()), vrf.data()),
                "neighbor * vpn vrf * Up");
  }
  const std::string_view why = BgpDownReasonText(reason);
  return Make("BGP-5-ADJCHANGE",
              Fmt("neighbor %.*s vpn vrf %.*s Down %.*s",
                  static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                  static_cast<int>(vrf.size()), vrf.data(),
                  static_cast<int>(why.size()), why.data()),
              Fmt("neighbor * vpn vrf * Down %.*s",
                  static_cast<int>(why.size()), why.data()));
}

Msg V1BgpAdj(std::string_view neighbor_ip, bool up, BgpDownReason reason) {
  if (up) {
    return Make("BGP-5-ADJCHANGE",
                Fmt("neighbor %.*s Up", static_cast<int>(neighbor_ip.size()),
                    neighbor_ip.data()),
                "neighbor * Up");
  }
  const std::string_view why = BgpDownReasonText(reason);
  return Make("BGP-5-ADJCHANGE",
              Fmt("neighbor %.*s Down %.*s",
                  static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                  static_cast<int>(why.size()), why.data()),
              Fmt("neighbor * Down %.*s", static_cast<int>(why.size()),
                  why.data()));
}

Msg V1OspfAdj(std::string_view neighbor_ip, std::string_view ifname, bool up) {
  if (up) {
    return Make("OSPF-5-ADJCHG",
                Fmt("Process 100, Nbr %.*s on %.*s from LOADING to FULL, "
                    "Loading Done",
                    static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                    static_cast<int>(ifname.size()), ifname.data()),
                "Process 100, Nbr * on * from LOADING to FULL, Loading Done");
  }
  return Make("OSPF-5-ADJCHG",
              Fmt("Process 100, Nbr %.*s on %.*s from FULL to DOWN, "
                  "Neighbor Down: Interface down or detached",
                  static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                  static_cast<int>(ifname.size()), ifname.data()),
              "Process 100, Nbr * on * from FULL to DOWN, Neighbor Down: "
              "Interface down or detached");
}

Msg V1PimNbrChange(std::string_view neighbor_ip, std::string_view ifname,
                   bool up) {
  return Make("PIM-5-NBRCHG",
              Fmt("neighbor %.*s %s on interface %.*s",
                  static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                  up ? "UP" : "DOWN", static_cast<int>(ifname.size()),
                  ifname.data()),
              Fmt("neighbor * %s on interface *", up ? "UP" : "DOWN"));
}

Msg V1CpuRising(int total_pct, int intr_pct, int pid1, int u1, int pid2,
                int u2, int pid3, int u3) {
  return Make(
      "SYS-1-CPURISINGTHRESHOLD",
      Fmt("Threshold: Total CPU Utilization(Total/Intr): %d%%/%d%%, Top 3 "
          "processes (Pid/Util): %d/%d%%, %d/%d%%, %d/%d%%",
          total_pct, intr_pct, pid1, u1, pid2, u2, pid3, u3),
      "Threshold: Total CPU Utilization(Total/Intr): * Top 3 processes "
      "(Pid/Util): * * *");
}

Msg V1CpuFalling(int total_pct, int intr_pct) {
  return Make("SYS-1-CPUFALLINGTHRESHOLD",
              Fmt("Threshold: Total CPU Utilization(Total/Intr) %d%%/%d%%.",
                  total_pct, intr_pct),
              "Threshold: Total CPU Utilization(Total/Intr) *");
}

Msg V1TcpBadAuth(std::string_view src_ip, int src_port,
                 std::string_view dst_ip) {
  return Make("TCP-6-BADAUTH",
              Fmt("Invalid MD5 digest from %.*s(%d) to %.*s(179)",
                  static_cast<int>(src_ip.size()), src_ip.data(), src_port,
                  static_cast<int>(dst_ip.size()), dst_ip.data()),
              "Invalid MD5 digest from * to *");
}

Msg V1LoginFailed(std::string_view user, std::string_view src_ip) {
  return Make("SEC_LOGIN-4-LOGIN_FAILED",
              Fmt("Login failed [user: %.*s] [Source: %.*s] [localport: 22]",
                  static_cast<int>(user.size()), user.data(),
                  static_cast<int>(src_ip.size()), src_ip.data()),
              "Login failed [user: * [Source: * [localport: 22]");
}

Msg V1SnmpAuthFail(std::string_view src_ip) {
  return Make("SNMP-3-AUTHFAIL",
              Fmt("Authentication failure for SNMP req from host %.*s",
                  static_cast<int>(src_ip.size()), src_ip.data()),
              "Authentication failure for SNMP req from host *");
}

Msg V1ConfigI(std::string_view user, std::string_view src_ip) {
  return Make("SYS-5-CONFIG_I",
              Fmt("Configured from console by %.*s on vty0 (%.*s)",
                  static_cast<int>(user.size()), user.data(),
                  static_cast<int>(src_ip.size()), src_ip.data()),
              "Configured from console by * on vty0 *");
}

Msg V1EnvTemp(int sensor, int celsius) {
  return Make("ENVMON-2-TEMP",
              Fmt("High temperature warning: sensor %d temperature %dC",
                  sensor, celsius),
              "High temperature warning: sensor * temperature *");
}

Msg V1MplsTeLsp(std::string_view path, bool up) {
  return Make("MPLS_TE-5-LSP",
              Fmt("LSP %.*s changed state to %s",
                  static_cast<int>(path.size()), path.data(), UpDown(up)),
              Fmt("LSP * changed state to %s", UpDown(up)));
}

Msg V1NtpSync(std::string_view server_ip) {
  return Make("NTP-6-PEERSYNC",
              Fmt("NTP sync to peer %.*s", static_cast<int>(server_ip.size()),
                  server_ip.data()),
              "NTP sync to peer *");
}

Msg V1DuplexMismatch(std::string_view ifname) {
  return Make("CDP-4-DUPLEX_MISMATCH",
              Fmt("duplex mismatch discovered on %.*s",
                  static_cast<int>(ifname.size()), ifname.data()),
              "duplex mismatch discovered on *");
}

// ---- V2 -----------------------------------------------------------------

Msg V2LinkState(std::string_view ifname, bool up) {
  if (up) {
    return Make("SNMP-WARNING-linkup",
                Fmt("Interface %.*s is operational",
                    static_cast<int>(ifname.size()), ifname.data()),
                "Interface * is operational");
  }
  return Make("SNMP-WARNING-linkDown",
              Fmt("Interface %.*s is not operational",
                  static_cast<int>(ifname.size()), ifname.data()),
              "Interface * is not operational");
}

Msg V2PortState(std::string_view port, bool up) {
  return Make("PORT-MINOR-portStateChange",
              Fmt("Port %.*s state changed to %s",
                  static_cast<int>(port.size()), port.data(), UpDown(up)),
              Fmt("Port * state changed to %s", UpDown(up)));
}

Msg V2SapPortChange(std::string_view port) {
  return Make("SVCMGR-MAJOR-sapPortStateChangeProcessed",
              Fmt("The status of all affected SAPs on port %.*s has been "
                  "updated.",
                  static_cast<int>(port.size()), port.data()),
              "The status of all affected SAPs on port * has been updated.");
}

Msg V2BgpSessionState(std::string_view neighbor_ip, bool up) {
  return Make("BGP-MINOR-bgpSessionStateChange",
              Fmt("BGP session to neighbor %.*s moved to %s state",
                  static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                  up ? "established" : "idle"),
              Fmt("BGP session to neighbor * moved to %s state",
                  up ? "established" : "idle"));
}

Msg V2PimNeighborLoss(std::string_view neighbor_ip, std::string_view ifname) {
  return Make("PIM-MAJOR-pimNeighborLoss",
              Fmt("PIM neighbor %.*s on interface %.*s lost",
                  static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                  static_cast<int>(ifname.size()), ifname.data()),
              "PIM neighbor * on interface * lost");
}

Msg V2PimNeighborUp(std::string_view neighbor_ip, std::string_view ifname) {
  return Make("PIM-MINOR-pimNeighborUp",
              Fmt("PIM neighbor %.*s on interface %.*s established",
                  static_cast<int>(neighbor_ip.size()), neighbor_ip.data(),
                  static_cast<int>(ifname.size()), ifname.data()),
              "PIM neighbor * on interface * established");
}

Msg V2LspState(std::string_view path, bool up) {
  return Make(up ? "MPLS-MINOR-lspUp" : "MPLS-MAJOR-lspDown",
              Fmt("LSP path %.*s is %s", static_cast<int>(path.size()),
                  path.data(), UpDown(up)),
              Fmt("LSP path * is %s", UpDown(up)));
}

Msg V2LspRetry(std::string_view path, int retry_seconds) {
  return Make("MPLS-MAJOR-lspSetupRetry",
              Fmt("LSP path %.*s setup failed, retry in %d seconds",
                  static_cast<int>(path.size()), path.data(), retry_seconds),
              "LSP path * setup failed, retry in * seconds");
}

Msg V2LagState(std::string_view lag, bool up) {
  return Make("LAG-MINOR-lagStateChange",
              Fmt("LAG %.*s state changed to %s",
                  static_cast<int>(lag.size()), lag.data(), UpDown(up)),
              Fmt("LAG * state changed to %s", UpDown(up)));
}

Msg V2CpuUsage(bool high, int pct) {
  if (high) {
    return Make("SYSTEM-MINOR-tmnxCpuUsageHigh",
                Fmt("CPU usage is %d percent, above high watermark", pct),
                "CPU usage is * percent, above high watermark");
  }
  return Make("SYSTEM-MINOR-tmnxCpuUsageNormal",
              Fmt("CPU usage is %d percent, back to normal", pct),
              "CPU usage is * percent, back to normal");
}

Msg V2SshLoginFailed(std::string_view user, std::string_view src_ip) {
  return Make("SECURITY-WARNING-sshLoginFailed",
              Fmt("SSH login attempt from %.*s failed for user %.*s",
                  static_cast<int>(src_ip.size()), src_ip.data(),
                  static_cast<int>(user.size()), user.data()),
              "SSH login attempt from * failed for user *");
}

Msg V2FtpLoginFailed(std::string_view user, std::string_view src_ip) {
  return Make("SECURITY-WARNING-ftpLoginFailed",
              Fmt("FTP login attempt from %.*s failed for user %.*s",
                  static_cast<int>(src_ip.size()), src_ip.data(),
                  static_cast<int>(user.size()), user.data()),
              "FTP login attempt from * failed for user *");
}

Msg V2ServiceState(int service_id, bool up) {
  return Make("SVCMGR-MINOR-serviceStateChange",
              Fmt("Service %d changed state to %s", service_id, UpDown(up)),
              Fmt("Service * changed state to %s", UpDown(up)));
}

Msg V2TimeSync(std::string_view server_ip) {
  return Make("SYSTEM-INFO-tmnxTimeSync",
              Fmt("Time synchronized to server %.*s",
                  static_cast<int>(server_ip.size()), server_ip.data()),
              "Time synchronized to server *");
}

Msg V2ConfigChange(std::string_view user, std::string_view src_ip) {
  return Make("CFGMGR-INFO-configurationSaved",
              Fmt("Configuration saved by user %.*s from %.*s",
                  static_cast<int>(user.size()), user.data(),
                  static_cast<int>(src_ip.size()), src_ip.data()),
              "Configuration saved by user * from *");
}

Msg V2SnmpAuthFail(std::string_view src_ip) {
  return Make("SNMP-WARNING-authenticationFailure",
              Fmt("SNMP authentication failure from host %.*s",
                  static_cast<int>(src_ip.size()), src_ip.data()),
              "SNMP authentication failure from host *");
}

Msg V1FanFail() {
  return Make("ENVMON-2-FANFAIL", "Fan tray failure detected, status critical",
              "Fan tray failure detected, status critical");
}

Msg V1Switchover() {
  return Make("REDUNDANCY-3-SWITCHOVER",
              "RP switchover: standby route processor becoming active",
              "RP switchover: standby route processor becoming active");
}

Msg V1OirCard(std::string_view slot_pos, bool removed) {
  if (removed) {
    return Make("OIR-6-REMCARD",
                Fmt("Card removed from slot %.*s, interfaces disabled",
                    static_cast<int>(slot_pos.size()), slot_pos.data()),
                "Card removed from slot * interfaces disabled");
  }
  return Make("OIR-6-INSCARD",
              Fmt("Card inserted in slot %.*s, interfaces administratively "
                  "shut down",
                  static_cast<int>(slot_pos.size()), slot_pos.data()),
              "Card inserted in slot * interfaces administratively shut "
              "down");
}

Msg V2EnvTemp(int celsius) {
  return Make("CHASSIS-MINOR-tmnxEnvTempTooHigh",
              Fmt("Chassis temperature %d degrees exceeds threshold",
                  celsius),
              "Chassis temperature * degrees exceeds threshold");
}

Msg V2FanFail() {
  return Make("CHASSIS-MAJOR-fanFailure",
              "Fan tray failure detected, speed degraded",
              "Fan tray failure detected, speed degraded");
}

Msg V2Switchover() {
  return Make("CHASSIS-MAJOR-cpmSwitchover",
              "Control processor switchover, standby now active",
              "Control processor switchover, standby now active");
}

Msg V2OirCard(std::string_view slot_pos, bool removed) {
  if (removed) {
    return Make("CHASSIS-MAJOR-cardRemoved",
                Fmt("Card in slot %.*s removed",
                    static_cast<int>(slot_pos.size()), slot_pos.data()),
                "Card in slot * removed");
  }
  return Make("CHASSIS-MINOR-cardInserted",
              Fmt("Card in slot %.*s inserted",
                  static_cast<int>(slot_pos.size()), slot_pos.data()),
              "Card in slot * inserted");
}

Msg RareNoise(bool v1_style, int variant, long long value) {
  static constexpr std::array<const char*, 10> kFacility = {
      "SYS",  "HARDWARE", "PLATFORM", "MEMPOOL", "FIB",
      "QOSM", "ACLMGR",   "VTYMGR",   "CLOCKSYNC", "LCDRV"};
  static constexpr std::array<const char*, 5> kMnemonic = {
      "NOTICE", "STATUS", "REPORT", "EVENT", "AUDIT"};
  static constexpr std::array<const char*, 5> kWhat = {
      "buffer pool usage is", "queue depth reached",
      "table entry count is", "retry counter at", "watchdog interval"};
  static constexpr std::array<const char*, 2> kUnit = {"units", "entries"};

  variant = ((variant % kRareNoiseVariants) + kRareNoiseVariants) %
            kRareNoiseVariants;
  const char* facility = kFacility[static_cast<std::size_t>(variant % 10)];
  const char* mnemonic = kMnemonic[static_cast<std::size_t>(variant / 10)];
  const char* what = kWhat[static_cast<std::size_t>(variant % 5)];
  const char* unit = kUnit[static_cast<std::size_t>(variant % 2)];

  std::string code;
  if (v1_style) {
    code = Fmt("%s-6-%s%d", facility, mnemonic, variant);
  } else {
    std::string lower(mnemonic);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    code = Fmt("%s-INFO-%s%d", facility, lower.c_str(), variant);
  }
  return Make(code, Fmt("%s %lld %s", what, value, unit),
              Fmt("%s * %s", what, unit));
}

}  // namespace sld::sim
