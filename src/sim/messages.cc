#include "sim/messages.h"

#include <algorithm>
#include <array>
#include <cstdio>

namespace sld::sim {
namespace {

// printf a string_view: "%.*s" wants (int length, const char* data).
#define SLD_SV(s) static_cast<int>((s).size()), (s).data()

// Appends snprintf output to `s` without disturbing its capacity — the
// appending render forms below stay allocation-free once the target
// string has grown to steady state.
void AppendFmt(std::string& s, const char* fmt, auto... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  s.append(buf, static_cast<std::size_t>(
                    std::min<int>(n, static_cast<int>(sizeof(buf)) - 1)));
}

// Clears `out` and seeds the code plus the gt_template's "<code> "
// prefix; the caller appends the detail text and the masked template.
void Begin(Msg& out, std::string_view code) {
  out.code.assign(code);
  out.detail.clear();
  out.gt_template.assign(code);
  out.gt_template += ' ';
}

const char* UpDown(bool up) { return up ? "up" : "down"; }

}  // namespace

std::string_view BgpDownReasonText(BgpDownReason r) noexcept {
  switch (r) {
    case BgpDownReason::kInterfaceFlap:
      return "Interface flap";
    case BgpDownReason::kNotificationSent:
      return "BGP Notification sent";
    case BgpDownReason::kNotificationReceived:
      return "BGP Notification received";
    case BgpDownReason::kPeerClosed:
      return "Peer closed the session";
  }
  return "";
}

// ---- V1 -----------------------------------------------------------------

void V1LinkUpDown(std::string_view ifname, bool up, Msg* out) {
  Begin(*out, "LINK-3-UPDOWN");
  AppendFmt(out->detail, "Interface %.*s, changed state to %s", SLD_SV(ifname),
            UpDown(up));
  AppendFmt(out->gt_template, "Interface * changed state to %s", UpDown(up));
}
Msg V1LinkUpDown(std::string_view ifname, bool up) {
  Msg out;
  V1LinkUpDown(ifname, up, &out);
  return out;
}

void V1LineProtoUpDown(std::string_view ifname, bool up, Msg* out) {
  Begin(*out, "LINEPROTO-5-UPDOWN");
  AppendFmt(out->detail, "Line protocol on Interface %.*s, changed state to %s",
            SLD_SV(ifname), UpDown(up));
  AppendFmt(out->gt_template,
            "Line protocol on Interface * changed state to %s", UpDown(up));
}
Msg V1LineProtoUpDown(std::string_view ifname, bool up) {
  Msg out;
  V1LineProtoUpDown(ifname, up, &out);
  return out;
}

void V1ControllerUpDown(std::string_view controller, bool up, Msg* out) {
  // `controller` is e.g. "T1 0/3" — the position token is the variable.
  Begin(*out, "CONTROLLER-5-UPDOWN");
  AppendFmt(out->detail, "Controller %.*s, changed state to %s",
            SLD_SV(controller), UpDown(up));
  AppendFmt(out->gt_template, "Controller T1 * changed state to %s",
            UpDown(up));
}
Msg V1ControllerUpDown(std::string_view controller, bool up) {
  Msg out;
  V1ControllerUpDown(controller, up, &out);
  return out;
}

void V1BgpVpnAdj(std::string_view neighbor_ip, std::string_view vrf, bool up,
                 BgpDownReason reason, Msg* out) {
  Begin(*out, "BGP-5-ADJCHANGE");
  if (up) {
    AppendFmt(out->detail, "neighbor %.*s vpn vrf %.*s Up", SLD_SV(neighbor_ip),
              SLD_SV(vrf));
    out->gt_template += "neighbor * vpn vrf * Up";
    return;
  }
  const std::string_view why = BgpDownReasonText(reason);
  AppendFmt(out->detail, "neighbor %.*s vpn vrf %.*s Down %.*s",
            SLD_SV(neighbor_ip), SLD_SV(vrf), SLD_SV(why));
  AppendFmt(out->gt_template, "neighbor * vpn vrf * Down %.*s", SLD_SV(why));
}
Msg V1BgpVpnAdj(std::string_view neighbor_ip, std::string_view vrf, bool up,
                BgpDownReason reason) {
  Msg out;
  V1BgpVpnAdj(neighbor_ip, vrf, up, reason, &out);
  return out;
}

void V1BgpAdj(std::string_view neighbor_ip, bool up, BgpDownReason reason,
              Msg* out) {
  Begin(*out, "BGP-5-ADJCHANGE");
  if (up) {
    AppendFmt(out->detail, "neighbor %.*s Up", SLD_SV(neighbor_ip));
    out->gt_template += "neighbor * Up";
    return;
  }
  const std::string_view why = BgpDownReasonText(reason);
  AppendFmt(out->detail, "neighbor %.*s Down %.*s", SLD_SV(neighbor_ip),
            SLD_SV(why));
  AppendFmt(out->gt_template, "neighbor * Down %.*s", SLD_SV(why));
}
Msg V1BgpAdj(std::string_view neighbor_ip, bool up, BgpDownReason reason) {
  Msg out;
  V1BgpAdj(neighbor_ip, up, reason, &out);
  return out;
}

void V1OspfAdj(std::string_view neighbor_ip, std::string_view ifname, bool up,
               Msg* out) {
  Begin(*out, "OSPF-5-ADJCHG");
  if (up) {
    AppendFmt(out->detail,
              "Process 100, Nbr %.*s on %.*s from LOADING to FULL, "
              "Loading Done",
              SLD_SV(neighbor_ip), SLD_SV(ifname));
    out->gt_template +=
        "Process 100, Nbr * on * from LOADING to FULL, Loading Done";
    return;
  }
  AppendFmt(out->detail,
            "Process 100, Nbr %.*s on %.*s from FULL to DOWN, "
            "Neighbor Down: Interface down or detached",
            SLD_SV(neighbor_ip), SLD_SV(ifname));
  out->gt_template +=
      "Process 100, Nbr * on * from FULL to DOWN, Neighbor Down: "
      "Interface down or detached";
}
Msg V1OspfAdj(std::string_view neighbor_ip, std::string_view ifname, bool up) {
  Msg out;
  V1OspfAdj(neighbor_ip, ifname, up, &out);
  return out;
}

void V1PimNbrChange(std::string_view neighbor_ip, std::string_view ifname,
                    bool up, Msg* out) {
  Begin(*out, "PIM-5-NBRCHG");
  AppendFmt(out->detail, "neighbor %.*s %s on interface %.*s",
            SLD_SV(neighbor_ip), up ? "UP" : "DOWN", SLD_SV(ifname));
  AppendFmt(out->gt_template, "neighbor * %s on interface *",
            up ? "UP" : "DOWN");
}
Msg V1PimNbrChange(std::string_view neighbor_ip, std::string_view ifname,
                   bool up) {
  Msg out;
  V1PimNbrChange(neighbor_ip, ifname, up, &out);
  return out;
}

void V1CpuRising(int total_pct, int intr_pct, int pid1, int u1, int pid2,
                 int u2, int pid3, int u3, Msg* out) {
  Begin(*out, "SYS-1-CPURISINGTHRESHOLD");
  AppendFmt(out->detail,
            "Threshold: Total CPU Utilization(Total/Intr): %d%%/%d%%, Top 3 "
            "processes (Pid/Util): %d/%d%%, %d/%d%%, %d/%d%%",
            total_pct, intr_pct, pid1, u1, pid2, u2, pid3, u3);
  out->gt_template +=
      "Threshold: Total CPU Utilization(Total/Intr): * Top 3 processes "
      "(Pid/Util): * * *";
}
Msg V1CpuRising(int total_pct, int intr_pct, int pid1, int u1, int pid2,
                int u2, int pid3, int u3) {
  Msg out;
  V1CpuRising(total_pct, intr_pct, pid1, u1, pid2, u2, pid3, u3, &out);
  return out;
}

void V1CpuFalling(int total_pct, int intr_pct, Msg* out) {
  Begin(*out, "SYS-1-CPUFALLINGTHRESHOLD");
  AppendFmt(out->detail,
            "Threshold: Total CPU Utilization(Total/Intr) %d%%/%d%%.",
            total_pct, intr_pct);
  out->gt_template += "Threshold: Total CPU Utilization(Total/Intr) *";
}
Msg V1CpuFalling(int total_pct, int intr_pct) {
  Msg out;
  V1CpuFalling(total_pct, intr_pct, &out);
  return out;
}

void V1TcpBadAuth(std::string_view src_ip, int src_port,
                  std::string_view dst_ip, Msg* out) {
  Begin(*out, "TCP-6-BADAUTH");
  AppendFmt(out->detail, "Invalid MD5 digest from %.*s(%d) to %.*s(179)",
            SLD_SV(src_ip), src_port, SLD_SV(dst_ip));
  out->gt_template += "Invalid MD5 digest from * to *";
}
Msg V1TcpBadAuth(std::string_view src_ip, int src_port,
                 std::string_view dst_ip) {
  Msg out;
  V1TcpBadAuth(src_ip, src_port, dst_ip, &out);
  return out;
}

void V1LoginFailed(std::string_view user, std::string_view src_ip, Msg* out) {
  Begin(*out, "SEC_LOGIN-4-LOGIN_FAILED");
  AppendFmt(out->detail,
            "Login failed [user: %.*s] [Source: %.*s] [localport: 22]",
            SLD_SV(user), SLD_SV(src_ip));
  out->gt_template += "Login failed [user: * [Source: * [localport: 22]";
}
Msg V1LoginFailed(std::string_view user, std::string_view src_ip) {
  Msg out;
  V1LoginFailed(user, src_ip, &out);
  return out;
}

void V1SnmpAuthFail(std::string_view src_ip, Msg* out) {
  Begin(*out, "SNMP-3-AUTHFAIL");
  AppendFmt(out->detail, "Authentication failure for SNMP req from host %.*s",
            SLD_SV(src_ip));
  out->gt_template += "Authentication failure for SNMP req from host *";
}
Msg V1SnmpAuthFail(std::string_view src_ip) {
  Msg out;
  V1SnmpAuthFail(src_ip, &out);
  return out;
}

void V1ConfigI(std::string_view user, std::string_view src_ip, Msg* out) {
  Begin(*out, "SYS-5-CONFIG_I");
  AppendFmt(out->detail, "Configured from console by %.*s on vty0 (%.*s)",
            SLD_SV(user), SLD_SV(src_ip));
  out->gt_template += "Configured from console by * on vty0 *";
}
Msg V1ConfigI(std::string_view user, std::string_view src_ip) {
  Msg out;
  V1ConfigI(user, src_ip, &out);
  return out;
}

void V1EnvTemp(int sensor, int celsius, Msg* out) {
  Begin(*out, "ENVMON-2-TEMP");
  AppendFmt(out->detail, "High temperature warning: sensor %d temperature %dC",
            sensor, celsius);
  out->gt_template += "High temperature warning: sensor * temperature *";
}
Msg V1EnvTemp(int sensor, int celsius) {
  Msg out;
  V1EnvTemp(sensor, celsius, &out);
  return out;
}

void V1MplsTeLsp(std::string_view path, bool up, Msg* out) {
  Begin(*out, "MPLS_TE-5-LSP");
  AppendFmt(out->detail, "LSP %.*s changed state to %s", SLD_SV(path),
            UpDown(up));
  AppendFmt(out->gt_template, "LSP * changed state to %s", UpDown(up));
}
Msg V1MplsTeLsp(std::string_view path, bool up) {
  Msg out;
  V1MplsTeLsp(path, up, &out);
  return out;
}

void V1NtpSync(std::string_view server_ip, Msg* out) {
  Begin(*out, "NTP-6-PEERSYNC");
  AppendFmt(out->detail, "NTP sync to peer %.*s", SLD_SV(server_ip));
  out->gt_template += "NTP sync to peer *";
}
Msg V1NtpSync(std::string_view server_ip) {
  Msg out;
  V1NtpSync(server_ip, &out);
  return out;
}

void V1DuplexMismatch(std::string_view ifname, Msg* out) {
  Begin(*out, "CDP-4-DUPLEX_MISMATCH");
  AppendFmt(out->detail, "duplex mismatch discovered on %.*s", SLD_SV(ifname));
  out->gt_template += "duplex mismatch discovered on *";
}
Msg V1DuplexMismatch(std::string_view ifname) {
  Msg out;
  V1DuplexMismatch(ifname, &out);
  return out;
}

// ---- V2 -----------------------------------------------------------------

void V2LinkState(std::string_view ifname, bool up, Msg* out) {
  if (up) {
    Begin(*out, "SNMP-WARNING-linkup");
    AppendFmt(out->detail, "Interface %.*s is operational", SLD_SV(ifname));
    out->gt_template += "Interface * is operational";
    return;
  }
  Begin(*out, "SNMP-WARNING-linkDown");
  AppendFmt(out->detail, "Interface %.*s is not operational", SLD_SV(ifname));
  out->gt_template += "Interface * is not operational";
}
Msg V2LinkState(std::string_view ifname, bool up) {
  Msg out;
  V2LinkState(ifname, up, &out);
  return out;
}

void V2PortState(std::string_view port, bool up, Msg* out) {
  Begin(*out, "PORT-MINOR-portStateChange");
  AppendFmt(out->detail, "Port %.*s state changed to %s", SLD_SV(port),
            UpDown(up));
  AppendFmt(out->gt_template, "Port * state changed to %s", UpDown(up));
}
Msg V2PortState(std::string_view port, bool up) {
  Msg out;
  V2PortState(port, up, &out);
  return out;
}

void V2SapPortChange(std::string_view port, Msg* out) {
  Begin(*out, "SVCMGR-MAJOR-sapPortStateChangeProcessed");
  AppendFmt(out->detail,
            "The status of all affected SAPs on port %.*s has been updated.",
            SLD_SV(port));
  out->gt_template +=
      "The status of all affected SAPs on port * has been updated.";
}
Msg V2SapPortChange(std::string_view port) {
  Msg out;
  V2SapPortChange(port, &out);
  return out;
}

void V2BgpSessionState(std::string_view neighbor_ip, bool up, Msg* out) {
  Begin(*out, "BGP-MINOR-bgpSessionStateChange");
  AppendFmt(out->detail, "BGP session to neighbor %.*s moved to %s state",
            SLD_SV(neighbor_ip), up ? "established" : "idle");
  AppendFmt(out->gt_template, "BGP session to neighbor * moved to %s state",
            up ? "established" : "idle");
}
Msg V2BgpSessionState(std::string_view neighbor_ip, bool up) {
  Msg out;
  V2BgpSessionState(neighbor_ip, up, &out);
  return out;
}

void V2PimNeighborLoss(std::string_view neighbor_ip, std::string_view ifname,
                       Msg* out) {
  Begin(*out, "PIM-MAJOR-pimNeighborLoss");
  AppendFmt(out->detail, "PIM neighbor %.*s on interface %.*s lost",
            SLD_SV(neighbor_ip), SLD_SV(ifname));
  out->gt_template += "PIM neighbor * on interface * lost";
}
Msg V2PimNeighborLoss(std::string_view neighbor_ip, std::string_view ifname) {
  Msg out;
  V2PimNeighborLoss(neighbor_ip, ifname, &out);
  return out;
}

void V2PimNeighborUp(std::string_view neighbor_ip, std::string_view ifname,
                     Msg* out) {
  Begin(*out, "PIM-MINOR-pimNeighborUp");
  AppendFmt(out->detail, "PIM neighbor %.*s on interface %.*s established",
            SLD_SV(neighbor_ip), SLD_SV(ifname));
  out->gt_template += "PIM neighbor * on interface * established";
}
Msg V2PimNeighborUp(std::string_view neighbor_ip, std::string_view ifname) {
  Msg out;
  V2PimNeighborUp(neighbor_ip, ifname, &out);
  return out;
}

void V2LspState(std::string_view path, bool up, Msg* out) {
  Begin(*out, up ? "MPLS-MINOR-lspUp" : "MPLS-MAJOR-lspDown");
  AppendFmt(out->detail, "LSP path %.*s is %s", SLD_SV(path), UpDown(up));
  AppendFmt(out->gt_template, "LSP path * is %s", UpDown(up));
}
Msg V2LspState(std::string_view path, bool up) {
  Msg out;
  V2LspState(path, up, &out);
  return out;
}

void V2LspRetry(std::string_view path, int retry_seconds, Msg* out) {
  Begin(*out, "MPLS-MAJOR-lspSetupRetry");
  AppendFmt(out->detail, "LSP path %.*s setup failed, retry in %d seconds",
            SLD_SV(path), retry_seconds);
  out->gt_template += "LSP path * setup failed, retry in * seconds";
}
Msg V2LspRetry(std::string_view path, int retry_seconds) {
  Msg out;
  V2LspRetry(path, retry_seconds, &out);
  return out;
}

void V2LagState(std::string_view lag, bool up, Msg* out) {
  Begin(*out, "LAG-MINOR-lagStateChange");
  AppendFmt(out->detail, "LAG %.*s state changed to %s", SLD_SV(lag),
            UpDown(up));
  AppendFmt(out->gt_template, "LAG * state changed to %s", UpDown(up));
}
Msg V2LagState(std::string_view lag, bool up) {
  Msg out;
  V2LagState(lag, up, &out);
  return out;
}

void V2CpuUsage(bool high, int pct, Msg* out) {
  if (high) {
    Begin(*out, "SYSTEM-MINOR-tmnxCpuUsageHigh");
    AppendFmt(out->detail, "CPU usage is %d percent, above high watermark",
              pct);
    out->gt_template += "CPU usage is * percent, above high watermark";
    return;
  }
  Begin(*out, "SYSTEM-MINOR-tmnxCpuUsageNormal");
  AppendFmt(out->detail, "CPU usage is %d percent, back to normal", pct);
  out->gt_template += "CPU usage is * percent, back to normal";
}
Msg V2CpuUsage(bool high, int pct) {
  Msg out;
  V2CpuUsage(high, pct, &out);
  return out;
}

void V2SshLoginFailed(std::string_view user, std::string_view src_ip,
                      Msg* out) {
  Begin(*out, "SECURITY-WARNING-sshLoginFailed");
  AppendFmt(out->detail, "SSH login attempt from %.*s failed for user %.*s",
            SLD_SV(src_ip), SLD_SV(user));
  out->gt_template += "SSH login attempt from * failed for user *";
}
Msg V2SshLoginFailed(std::string_view user, std::string_view src_ip) {
  Msg out;
  V2SshLoginFailed(user, src_ip, &out);
  return out;
}

void V2FtpLoginFailed(std::string_view user, std::string_view src_ip,
                      Msg* out) {
  Begin(*out, "SECURITY-WARNING-ftpLoginFailed");
  AppendFmt(out->detail, "FTP login attempt from %.*s failed for user %.*s",
            SLD_SV(src_ip), SLD_SV(user));
  out->gt_template += "FTP login attempt from * failed for user *";
}
Msg V2FtpLoginFailed(std::string_view user, std::string_view src_ip) {
  Msg out;
  V2FtpLoginFailed(user, src_ip, &out);
  return out;
}

void V2ServiceState(int service_id, bool up, Msg* out) {
  Begin(*out, "SVCMGR-MINOR-serviceStateChange");
  AppendFmt(out->detail, "Service %d changed state to %s", service_id,
            UpDown(up));
  AppendFmt(out->gt_template, "Service * changed state to %s", UpDown(up));
}
Msg V2ServiceState(int service_id, bool up) {
  Msg out;
  V2ServiceState(service_id, up, &out);
  return out;
}

void V2TimeSync(std::string_view server_ip, Msg* out) {
  Begin(*out, "SYSTEM-INFO-tmnxTimeSync");
  AppendFmt(out->detail, "Time synchronized to server %.*s",
            SLD_SV(server_ip));
  out->gt_template += "Time synchronized to server *";
}
Msg V2TimeSync(std::string_view server_ip) {
  Msg out;
  V2TimeSync(server_ip, &out);
  return out;
}

void V2ConfigChange(std::string_view user, std::string_view src_ip, Msg* out) {
  Begin(*out, "CFGMGR-INFO-configurationSaved");
  AppendFmt(out->detail, "Configuration saved by user %.*s from %.*s",
            SLD_SV(user), SLD_SV(src_ip));
  out->gt_template += "Configuration saved by user * from *";
}
Msg V2ConfigChange(std::string_view user, std::string_view src_ip) {
  Msg out;
  V2ConfigChange(user, src_ip, &out);
  return out;
}

void V2SnmpAuthFail(std::string_view src_ip, Msg* out) {
  Begin(*out, "SNMP-WARNING-authenticationFailure");
  AppendFmt(out->detail, "SNMP authentication failure from host %.*s",
            SLD_SV(src_ip));
  out->gt_template += "SNMP authentication failure from host *";
}
Msg V2SnmpAuthFail(std::string_view src_ip) {
  Msg out;
  V2SnmpAuthFail(src_ip, &out);
  return out;
}

void V1FanFail(Msg* out) {
  Begin(*out, "ENVMON-2-FANFAIL");
  out->detail += "Fan tray failure detected, status critical";
  out->gt_template += "Fan tray failure detected, status critical";
}
Msg V1FanFail() {
  Msg out;
  V1FanFail(&out);
  return out;
}

void V1Switchover(Msg* out) {
  Begin(*out, "REDUNDANCY-3-SWITCHOVER");
  out->detail += "RP switchover: standby route processor becoming active";
  out->gt_template += "RP switchover: standby route processor becoming active";
}
Msg V1Switchover() {
  Msg out;
  V1Switchover(&out);
  return out;
}

void V1OirCard(std::string_view slot_pos, bool removed, Msg* out) {
  if (removed) {
    Begin(*out, "OIR-6-REMCARD");
    AppendFmt(out->detail, "Card removed from slot %.*s, interfaces disabled",
              SLD_SV(slot_pos));
    out->gt_template += "Card removed from slot * interfaces disabled";
    return;
  }
  Begin(*out, "OIR-6-INSCARD");
  AppendFmt(out->detail,
            "Card inserted in slot %.*s, interfaces administratively "
            "shut down",
            SLD_SV(slot_pos));
  out->gt_template +=
      "Card inserted in slot * interfaces administratively shut down";
}
Msg V1OirCard(std::string_view slot_pos, bool removed) {
  Msg out;
  V1OirCard(slot_pos, removed, &out);
  return out;
}

void V2EnvTemp(int celsius, Msg* out) {
  Begin(*out, "CHASSIS-MINOR-tmnxEnvTempTooHigh");
  AppendFmt(out->detail, "Chassis temperature %d degrees exceeds threshold",
            celsius);
  out->gt_template += "Chassis temperature * degrees exceeds threshold";
}
Msg V2EnvTemp(int celsius) {
  Msg out;
  V2EnvTemp(celsius, &out);
  return out;
}

void V2FanFail(Msg* out) {
  Begin(*out, "CHASSIS-MAJOR-fanFailure");
  out->detail += "Fan tray failure detected, speed degraded";
  out->gt_template += "Fan tray failure detected, speed degraded";
}
Msg V2FanFail() {
  Msg out;
  V2FanFail(&out);
  return out;
}

void V2Switchover(Msg* out) {
  Begin(*out, "CHASSIS-MAJOR-cpmSwitchover");
  out->detail += "Control processor switchover, standby now active";
  out->gt_template += "Control processor switchover, standby now active";
}
Msg V2Switchover() {
  Msg out;
  V2Switchover(&out);
  return out;
}

void V2OirCard(std::string_view slot_pos, bool removed, Msg* out) {
  if (removed) {
    Begin(*out, "CHASSIS-MAJOR-cardRemoved");
    AppendFmt(out->detail, "Card in slot %.*s removed", SLD_SV(slot_pos));
    out->gt_template += "Card in slot * removed";
    return;
  }
  Begin(*out, "CHASSIS-MINOR-cardInserted");
  AppendFmt(out->detail, "Card in slot %.*s inserted", SLD_SV(slot_pos));
  out->gt_template += "Card in slot * inserted";
}
Msg V2OirCard(std::string_view slot_pos, bool removed) {
  Msg out;
  V2OirCard(slot_pos, removed, &out);
  return out;
}

void RareNoise(bool v1_style, int variant, long long value, Msg* out) {
  static constexpr std::array<const char*, 10> kFacility = {
      "SYS",  "HARDWARE", "PLATFORM", "MEMPOOL", "FIB",
      "QOSM", "ACLMGR",   "VTYMGR",   "CLOCKSYNC", "LCDRV"};
  static constexpr std::array<const char*, 5> kMnemonic = {
      "NOTICE", "STATUS", "REPORT", "EVENT", "AUDIT"};
  // Pre-lowered spellings of kMnemonic, so the V2 code render needs no
  // per-call temporary string.
  static constexpr std::array<const char*, 5> kMnemonicLower = {
      "notice", "status", "report", "event", "audit"};
  static constexpr std::array<const char*, 5> kWhat = {
      "buffer pool usage is", "queue depth reached",
      "table entry count is", "retry counter at", "watchdog interval"};
  static constexpr std::array<const char*, 2> kUnit = {"units", "entries"};

  variant = ((variant % kRareNoiseVariants) + kRareNoiseVariants) %
            kRareNoiseVariants;
  const char* facility = kFacility[static_cast<std::size_t>(variant % 10)];
  const std::size_t mnemonic = static_cast<std::size_t>(variant / 10);
  const char* what = kWhat[static_cast<std::size_t>(variant % 5)];
  const char* unit = kUnit[static_cast<std::size_t>(variant % 2)];

  out->code.clear();
  if (v1_style) {
    AppendFmt(out->code, "%s-6-%s%d", facility, kMnemonic[mnemonic], variant);
  } else {
    AppendFmt(out->code, "%s-INFO-%s%d", facility, kMnemonicLower[mnemonic],
              variant);
  }
  out->detail.clear();
  AppendFmt(out->detail, "%s %lld %s", what, value, unit);
  out->gt_template.assign(out->code);
  out->gt_template += ' ';
  AppendFmt(out->gt_template, "%s * %s", what, unit);
}
Msg RareNoise(bool v1_style, int variant, long long value) {
  Msg out;
  RareNoise(v1_style, variant, value, &out);
  return out;
}

#undef SLD_SV

}  // namespace sld::sim
