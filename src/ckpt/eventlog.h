// Append-only durable event log (DESIGN.md §14).
//
// Every emitted DigestEvent is framed, appended, and fsynced *before*
// it is delivered to the sink, so after any crash the log is a prefix
// of the true emission stream.  Records are
//
//   [4] u32 payload length
//   [4] u32 CRC-32 over (seq bytes ++ payload)
//   [8] u64 sequence number
//   [..] payload
//
// Sequence numbers are dense from 0: record i has seq i.  On open the
// log is scanned; a torn or CRC-bad tail (the one record a crash can
// tear, since appends are sequential) is truncated away, and the next
// expected sequence number is recovered.  A *mid-log* corruption is a
// hard error — that is bitrot, not a crash artifact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace sld::ckpt {

class EventLog {
 public:
  struct OpenStats {
    std::uint64_t records = 0;    // valid records found on open
    bool truncated_tail = false;  // a torn tail was cut away
  };

  // Opens (creating if absent) the log at `path`, scans it, truncates
  // any torn tail, and positions for appending.  Returns nullptr and
  // fills *error on unrecoverable problems (I/O failure, mid-log
  // corruption, non-dense sequence numbers).
  static std::unique_ptr<EventLog> Open(const std::string& path,
                                        OpenStats* stats, std::string* error);

  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Appends one record and fsyncs.  `seq` must equal next_seq().
  // Reports the fsync duration in seconds through *fsync_seconds when
  // non-null (for the eventlog_fsync_seconds histogram).
  bool Append(std::uint64_t seq, std::string_view payload,
              double* fsync_seconds, std::string* error);

  std::uint64_t next_seq() const noexcept { return next_seq_; }

  // Streams every valid record of the log at `path` (no instance
  // needed — used by `sldigest events` and the crash tests).  Stops at
  // a torn tail without error; returns false only on I/O failure or
  // mid-log corruption.
  static bool ForEach(
      const std::string& path,
      const std::function<void(std::uint64_t seq, std::string_view payload)>&
          fn,
      std::string* error);

 private:
  EventLog(int fd, std::uint64_t next_seq)
      : fd_(fd), next_seq_(next_seq) {}

  int fd_;
  std::uint64_t next_seq_;
};

}  // namespace sld::ckpt
