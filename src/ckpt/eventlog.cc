#include "ckpt/eventlog.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "ckpt/codec.h"

namespace sld::ckpt {
namespace {

constexpr std::size_t kFrameHeader = 4 + 4 + 8;

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

bool ReadWhole(const std::string& path, std::string* out, bool* absent,
               std::string* error) {
  *absent = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      *absent = true;
      return true;
    }
    if (error) *error = Errno("cannot open", path);
    return false;
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = Errno("cannot read", path);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

// Walks the frames in `raw`.  Returns false (with *error) on mid-log
// corruption or a sequence gap; on success *valid_bytes is the length
// of the valid prefix, *records the record count, and *torn whether a
// crash-torn tail follows the prefix.
bool ScanLog(const std::string& path, std::string_view raw,
             const std::function<void(std::uint64_t, std::string_view)>* fn,
             std::size_t* valid_bytes, std::uint64_t* records, bool* torn,
             std::string* error) {
  std::size_t pos = 0;
  std::uint64_t expect = 0;
  *torn = false;
  while (pos < raw.size()) {
    const std::size_t left = raw.size() - pos;
    // An incomplete frame, or a CRC-bad frame that is the *last* frame,
    // is the one artifact a crash mid-append can leave: truncate it.  A
    // CRC-bad frame with more data after it is bitrot and gets refused.
    if (left < kFrameHeader) {
      *torn = true;
      break;
    }
    const std::uint32_t len = GetU32(raw.data() + pos);
    const std::size_t frame = kFrameHeader + len;
    if (left < frame) {
      *torn = true;
      break;
    }
    const std::uint32_t crc = GetU32(raw.data() + pos + 4);
    const std::string_view seq_and_payload(raw.data() + pos + 8, 8 + len);
    if (Crc32(seq_and_payload) != crc) {
      if (left == frame) {
        *torn = true;
        break;
      }
      if (error) {
        *error = "event log " + path + ": corrupt record at offset " +
                 std::to_string(pos);
      }
      return false;
    }
    const std::uint64_t seq = GetU64(raw.data() + pos + 8);
    if (seq != expect) {
      if (error) {
        *error = "event log " + path + ": sequence gap (record " +
                 std::to_string(expect) + " has seq " + std::to_string(seq) +
                 ")";
      }
      return false;
    }
    if (fn != nullptr) {
      const std::uint32_t len = GetU32(raw.data() + pos);
      (*fn)(seq, std::string_view(raw.data() + pos + kFrameHeader, len));
    }
    pos += frame;
    ++expect;
  }
  *valid_bytes = pos;
  *records = expect;
  return true;
}

}  // namespace

std::unique_ptr<EventLog> EventLog::Open(const std::string& path,
                                         OpenStats* stats,
                                         std::string* error) {
  std::string raw;
  bool absent = false;
  if (!ReadWhole(path, &raw, &absent, error)) return nullptr;

  std::size_t valid_bytes = 0;
  std::uint64_t records = 0;
  bool torn = false;
  if (!absent && !ScanLog(path, raw, nullptr, &valid_bytes, &records, &torn,
                          error)) {
    return nullptr;
  }

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    if (error) *error = Errno("cannot open for append", path);
    return nullptr;
  }
  if (torn) {
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
      if (error) *error = Errno("cannot truncate torn tail of", path);
      ::close(fd);
      return nullptr;
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    if (error) *error = Errno("cannot seek", path);
    ::close(fd);
    return nullptr;
  }
  if (stats != nullptr) {
    stats->records = records;
    stats->truncated_tail = torn;
  }
  return std::unique_ptr<EventLog>(new EventLog(fd, records));
}

EventLog::~EventLog() {
  if (fd_ >= 0) ::close(fd_);
}

bool EventLog::Append(std::uint64_t seq, std::string_view payload,
                      double* fsync_seconds, std::string* error) {
  if (seq != next_seq_) {
    if (error) {
      *error = "event log append out of order: got seq " +
               std::to_string(seq) + ", expected " + std::to_string(next_seq_);
    }
    return false;
  }
  // Frame = len, crc(seq ++ payload), seq, payload.
  std::string seq_and_payload;
  seq_and_payload.reserve(8 + payload.size());
  for (int i = 0; i < 8; ++i) {
    seq_and_payload.push_back(static_cast<char>((seq >> (8 * i)) & 0xFFu));
  }
  seq_and_payload.append(payload.data(), payload.size());
  Writer w;
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(Crc32(seq_and_payload));
  std::string frame = std::move(w).Take();
  frame += seq_and_payload;

  const char* data = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("event log write: ") + std::strerror(errno);
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0) {
    if (error) *error = std::string("event log fsync: ") + std::strerror(errno);
    return false;
  }
  if (fsync_seconds != nullptr) {
    *fsync_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  ++next_seq_;
  return true;
}

bool EventLog::ForEach(
    const std::string& path,
    const std::function<void(std::uint64_t seq, std::string_view payload)>& fn,
    std::string* error) {
  std::string raw;
  bool absent = false;
  if (!ReadWhole(path, &raw, &absent, error)) return false;
  if (absent) return true;
  std::size_t valid_bytes = 0;
  std::uint64_t records = 0;
  bool torn = false;
  return ScanLog(path, raw, &fn, &valid_bytes, &records, &torn, error);
}

}  // namespace sld::ckpt
