// Crash-consistent snapshot files (DESIGN.md §14).
//
// A snapshot is a single file written with the classic
// temp + fsync + atomic-rename + directory-fsync protocol, so at every
// instant the path either holds the previous complete snapshot or the
// new complete snapshot — never a torn mix.  The on-disk layout is
//
//   [8]  magic  "SLDSNAP\0"
//   [4]  u32    format version (kSnapshotVersion)
//   [8]  u64    body length
//   [4]  u32    CRC-32 of the body
//   [..] body  (codec-encoded engine state)
//
// Readers refuse — rather than guess at — anything torn, truncated,
// CRC-corrupt, or written by a *newer* format version.  An absent file
// is not an error: it is simply a fresh start.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sld::ckpt {

inline constexpr std::uint32_t kSnapshotVersion = 1;

enum class SnapshotStatus {
  kOk,       // *body holds the snapshot body
  kAbsent,   // no snapshot at this path (fresh start)
  kCorrupt,  // torn, truncated, bad magic, or CRC mismatch
  kVersionMismatch,  // written by a newer format than this binary knows
};

// Atomically replaces `path` with a snapshot holding `body`.  On
// failure returns false and describes the error.
bool WriteSnapshotFile(const std::string& path, std::string_view body,
                       std::string* error);

// Reads and validates the snapshot at `path`.  kOk fills *body; every
// other status leaves it untouched and (except kAbsent) fills *error.
SnapshotStatus ReadSnapshotFile(const std::string& path, std::string* body,
                                std::string* error);

}  // namespace sld::ckpt
