#include "ckpt/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "ckpt/codec.h"

namespace sld::ckpt {
namespace {

constexpr char kMagic[8] = {'S', 'L', 'D', 'S', 'N', 'A', 'P', '\0'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

void PutU32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
}

void PutU64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// fsync the directory containing `path` so the rename itself is durable.
bool SyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool WriteSnapshotFile(const std::string& path, std::string_view body,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) *error = Errno("cannot create", tmp);
    return false;
  }

  char header[kHeaderSize];
  std::memcpy(header, kMagic, 8);
  PutU32(header + 8, kSnapshotVersion);
  PutU64(header + 12, body.size());
  PutU32(header + 20, Crc32(body));

  bool ok = WriteAll(fd, header, kHeaderSize) &&
            WriteAll(fd, body.data(), body.size()) && ::fsync(fd) == 0;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    if (error) *error = Errno("cannot write", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = Errno("cannot rename", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (!SyncParentDir(path)) {
    if (error) *error = Errno("cannot fsync parent of", path);
    return false;
  }
  return true;
}

SnapshotStatus ReadSnapshotFile(const std::string& path, std::string* body,
                                std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return SnapshotStatus::kAbsent;
    if (error) *error = Errno("cannot open", path);
    return SnapshotStatus::kCorrupt;
  }

  std::string raw;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = Errno("cannot read", path);
      ::close(fd);
      return SnapshotStatus::kCorrupt;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (raw.size() < kHeaderSize || std::memcmp(raw.data(), kMagic, 8) != 0) {
    if (error) *error = "snapshot " + path + ": bad magic or truncated header";
    return SnapshotStatus::kCorrupt;
  }
  const std::uint32_t version = GetU32(raw.data() + 8);
  if (version > kSnapshotVersion) {
    if (error) {
      *error = "snapshot " + path + ": format version " +
               std::to_string(version) + " is newer than this binary (" +
               std::to_string(kSnapshotVersion) + ")";
    }
    return SnapshotStatus::kVersionMismatch;
  }
  const std::uint64_t body_len = GetU64(raw.data() + 12);
  if (raw.size() - kHeaderSize != body_len) {
    if (error) *error = "snapshot " + path + ": truncated body";
    return SnapshotStatus::kCorrupt;
  }
  const std::string_view payload(raw.data() + kHeaderSize, body_len);
  if (Crc32(payload) != GetU32(raw.data() + 20)) {
    if (error) *error = "snapshot " + path + ": CRC mismatch";
    return SnapshotStatus::kCorrupt;
  }
  body->assign(payload);
  return SnapshotStatus::kOk;
}

}  // namespace sld::ckpt
