// Little-endian binary codec for checkpoint snapshots and the durable
// event log (DESIGN.md §14).  Header-only on purpose: every subsystem
// that persists state includes this from its .cc without adding a link
// edge, so the ckpt library depends on nothing above sld_common and
// nothing depends on it except the engine and the tools.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sld::ckpt {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the same CRC
// used by zip/gzip.  Table built on first use; thread-safe since C++11
// magic statics.
inline std::uint32_t Crc32(std::string_view data,
                           std::uint32_t crc = 0) noexcept {
  struct Table {
    std::uint32_t entries[256];
    Table() noexcept {
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        entries[i] = c;
      }
    }
  };
  static const Table table;
  crc = ~crc;
  for (const char ch : data) {
    crc = table.entries[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

// Append-only little-endian writer over a std::string buffer.
class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(std::uint32_t v) { PutLE(v); }
  void U64(std::uint64_t v) { PutLE(v); }

  void I64(std::int64_t v) { PutLE(static_cast<std::uint64_t>(v)); }

  void F64(double v) { PutLE(std::bit_cast<std::uint64_t>(v)); }

  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& data() const noexcept { return buf_; }
  std::string Take() && noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void PutLE(T v) {
    char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
    }
    buf_.append(bytes, sizeof(T));
  }

  std::string buf_;
};

// Bounds-checked reader.  On any short read the reader latches !ok()
// and every further accessor returns a zero value, so callers can
// decode a whole section and check ok() once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) noexcept : data_(data) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t U32() { return GetLE<std::uint32_t>(); }
  std::uint64_t U64() { return GetLE<std::uint64_t>(); }

  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  double F64() { return std::bit_cast<double>(U64()); }

  // An element count that is about to drive a container resize: fails
  // (returning 0) unless at least `elem_size` bytes per element remain,
  // so a corrupt length can never trigger a giant allocation.
  std::uint64_t Count(std::size_t elem_size) {
    const std::uint64_t n = U64();
    if (!ok_) return 0;
    if (elem_size == 0 || n > (data_.size() - pos_) / elem_size) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  std::string Str() {
    const std::uint64_t n = U64();
    if (!Need(n)) return {};
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  bool ok() const noexcept { return ok_; }
  bool AtEnd() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  bool Need(std::uint64_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  T GetLE() {
    if (!Need(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sld::ckpt
