// Serialization of core::DigestEvent for the durable event log.
// Header-only so the engine and the tools can encode/decode without a
// ckpt -> core link edge.
#pragma once

#include <cstdint>

#include "ckpt/codec.h"
#include "core/digest.h"

namespace sld::ckpt {

inline void WriteEvent(const core::DigestEvent& ev, Writer* w) {
  w->U64(ev.messages.size());
  for (const std::size_t m : ev.messages) w->U64(m);
  w->I64(ev.start);
  w->I64(ev.end);
  w->F64(ev.score);
  w->Str(ev.label);
  w->Str(ev.location_text);
  w->U64(ev.templates.size());
  for (const core::TemplateId t : ev.templates) w->U32(t);
  w->U64(ev.router_keys.size());
  for (const std::uint32_t r : ev.router_keys) w->U32(r);
}

inline bool ReadEvent(Reader* r, core::DigestEvent* ev) {
  ev->messages.resize(r->Count(8));
  for (std::size_t& m : ev->messages) m = r->U64();
  ev->start = r->I64();
  ev->end = r->I64();
  ev->score = r->F64();
  ev->label = r->Str();
  ev->location_text = r->Str();
  ev->templates.resize(r->Count(4));
  for (core::TemplateId& t : ev->templates) t = r->U32();
  ev->router_keys.resize(r->Count(4));
  for (std::uint32_t& k : ev->router_keys) k = r->U32();
  return r->ok();
}

}  // namespace sld::ckpt
